/**
 * @file
 * Compression-engine tests: exact round-trips for every engine over
 * every data class (property-style, parameterized over engines and
 * seeds), known-size encodings for CPACK and BDI, dictionary
 * seeding, streaming-window behaviour and dictionary pollution for
 * gzip/LZSS, and ORACLE optimality properties.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/factory.h"
#include "compress/fpc.h"
#include "compress/ideal.h"
#include "compress/lbe.h"
#include "compress/lzss.h"
#include "compress/oracle.h"
#include "compress/zero_run.h"

using namespace cable;

namespace
{

CacheLine
randomLine(Rng &rng)
{
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine / 2; ++w)
        l.setWord64(w, rng.next());
    return l;
}

CacheLine
sparseLine(Rng &rng, double zero_frac)
{
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, rng.chance(zero_frac)
                         ? 0
                         : static_cast<std::uint32_t>(rng.next()));
    return l;
}

CacheLine
smallIntLine(Rng &rng)
{
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, static_cast<std::uint32_t>(rng.below(256)));
    return l;
}

/** A near-duplicate of @p base with @p k mutated words. */
CacheLine
mutated(const CacheLine &base, Rng &rng, unsigned k)
{
    CacheLine l = base;
    for (unsigned i = 0; i < k; ++i)
        l.setWord(static_cast<unsigned>(rng.below(kWordsPerLine)),
                  static_cast<std::uint32_t>(rng.next()));
    return l;
}

} // namespace

// ---------------------------------------------------------------------
// Parameterized round-trip property over all engines.
// ---------------------------------------------------------------------

class EngineRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EngineRoundTrip, AllDataClassesSelfCompress)
{
    auto eng = makeCompressor(GetParam());
    Rng rng(42);
    std::vector<CacheLine> lines;
    lines.push_back(CacheLine{});                    // zero
    lines.push_back(CacheLine::filledWords(0x1234)); // repeated
    for (int i = 0; i < 30; ++i)
        lines.push_back(randomLine(rng));
    for (int i = 0; i < 30; ++i)
        lines.push_back(sparseLine(rng, 0.5));
    for (int i = 0; i < 10; ++i)
        lines.push_back(smallIntLine(rng));

    for (const CacheLine &l : lines) {
        BitVec enc = eng->compress(l, {});
        CacheLine dec = eng->decompress(enc, {});
        ASSERT_EQ(dec, l) << GetParam() << " failed on "
                          << l.toString();
    }
}

TEST_P(EngineRoundTrip, RefsSeededRoundTrip)
{
    auto eng = makeCompressor(GetParam());
    Rng rng(7);
    for (int iter = 0; iter < 25; ++iter) {
        CacheLine r1 = sparseLine(rng, 0.3);
        CacheLine r2 = randomLine(rng);
        CacheLine r3 = mutated(r1, rng, 2);
        RefList refs{&r1, &r2, &r3};
        CacheLine target = mutated(r1, rng, 1);
        BitVec enc = eng->compress(target, refs);
        CacheLine dec = eng->decompress(enc, refs);
        ASSERT_EQ(dec, target) << GetParam();
    }
}

TEST_P(EngineRoundTrip, PartialRefListsRoundTrip)
{
    auto eng = makeCompressor(GetParam());
    Rng rng(19);
    CacheLine r1 = sparseLine(rng, 0.4);
    for (unsigned nrefs = 1; nrefs <= 3; ++nrefs) {
        RefList refs;
        std::vector<CacheLine> store;
        for (unsigned i = 0; i < nrefs; ++i)
            store.push_back(mutated(r1, rng, i));
        for (const CacheLine &l : store)
            refs.push_back(&l);
        CacheLine target = mutated(r1, rng, 1);
        BitVec enc = eng->compress(target, refs);
        ASSERT_EQ(eng->decompress(enc, refs), target)
            << GetParam() << " nrefs=" << nrefs;
    }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineRoundTrip,
                         ::testing::Values("zero", "bdi", "fpc", "cpack",
                                           "cpack128", "lbe256",
                                           "gzip", "lzss", "oracle"));

// ---------------------------------------------------------------------
// Property sweep: many random seeds per engine.
// ---------------------------------------------------------------------

class EngineSeedSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(EngineSeedSweep, RandomRoundTrips)
{
    auto [name, seed] = GetParam();
    auto eng = makeCompressor(name);
    Rng rng(static_cast<std::uint64_t>(seed));
    for (int i = 0; i < 40; ++i) {
        CacheLine l = sparseLine(rng, rng.uniform());
        BitVec enc = eng->compress(l, {});
        ASSERT_EQ(eng->decompress(enc, {}), l)
            << name << " seed=" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EngineSeedSweep,
    ::testing::Combine(::testing::Values("bdi", "fpc", "cpack",
                                         "cpack128", "lbe256", "gzip",
                                         "oracle"),
                       ::testing::Values(1, 2, 3, 4, 5)));

// ---------------------------------------------------------------------
// CPACK specifics
// ---------------------------------------------------------------------

TEST(Cpack, ZeroLineIsTwoBitsPerWord)
{
    Cpack c;
    BitVec enc = c.compress(CacheLine{}, {});
    EXPECT_EQ(enc.sizeBits(), 2u * kWordsPerLine);
}

TEST(Cpack, SmallIntsUseZzzx)
{
    Cpack c;
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, 0x40 + w); // distinct bytes, three zero bytes
    BitVec enc = c.compress(l, {});
    EXPECT_EQ(enc.sizeBits(), 12u * kWordsPerLine);
}

TEST(Cpack, RepeatedWordUsesDictionary)
{
    Cpack c;
    CacheLine l = CacheLine::filledWords(0xdeadbeef);
    BitVec enc = c.compress(l, {});
    // First word uncompressed (34b), fifteen full matches (6b).
    EXPECT_EQ(enc.sizeBits(), 34u + 15u * 6u);
}

TEST(Cpack, HighBytesMatchUsesMmmx)
{
    Cpack c;
    CacheLine l;
    l.setWord(0, 0xcafe1200);
    for (unsigned w = 1; w < kWordsPerLine; ++w)
        l.setWord(w, 0xcafe1200 | w); // 3-byte dictionary matches
    BitVec enc = c.compress(l, {});
    EXPECT_EQ(enc.sizeBits(), 34u + 15u * (4u + 4u + 8u));
}

TEST(Cpack, IncompressibleCostsOverheadOnly)
{
    Cpack c;
    Rng rng(3);
    CacheLine l = randomLine(rng);
    BitVec enc = c.compress(l, {});
    // At worst every word is xxxx: 34 bits each.
    EXPECT_LE(enc.sizeBits(), 34u * kWordsPerLine);
}

TEST(Cpack, LargerDictionaryWidensIndex)
{
    Cpack::Config cfg;
    cfg.dict_entries = 32;
    Cpack c(cfg);
    EXPECT_EQ(c.name(), "cpack128");
    CacheLine l = CacheLine::filledWords(0xdeadbeef);
    BitVec enc = c.compress(l, {});
    EXPECT_EQ(enc.sizeBits(), 34u + 15u * 7u); // 2+5-bit index
}

TEST(Cpack, PersistentDictionaryCarriesAcrossLines)
{
    Cpack::Config cfg;
    cfg.persistent = true;
    Cpack enc_side(cfg), dec_side(cfg);
    Rng rng(11);
    CacheLine a = sparseLine(rng, 0.2);
    // Second transmission of similar content should be smaller.
    std::size_t first = enc_side.compress(a, {}).sizeBits();
    std::size_t second = enc_side.compress(a, {}).sizeBits();
    EXPECT_LT(second, first);
    // And a lock-step decoder still reconstructs both.
    Cpack enc2(cfg);
    BitVec e1 = enc2.compress(a, {});
    BitVec e2 = enc2.compress(a, {});
    EXPECT_EQ(dec_side.decompress(e1, {}), a);
    EXPECT_EQ(dec_side.decompress(e2, {}), a);
}

TEST(Cpack, ProbeDoesNotDisturbStream)
{
    Cpack::Config cfg;
    cfg.persistent = true;
    Cpack c(cfg);
    Rng rng(13);
    CacheLine a = sparseLine(rng, 0.2);
    c.compress(a, {});
    CacheLine b = sparseLine(rng, 0.2);
    std::size_t probe1 = c.compressedBits(b, {});
    std::size_t probe2 = c.compressedBits(b, {});
    EXPECT_EQ(probe1, probe2);
    EXPECT_EQ(c.compress(b, {}).sizeBits(), probe1);
}

TEST(Cpack, RefSeedingHelps)
{
    Cpack c;
    Rng rng(17);
    CacheLine ref = randomLine(rng);
    CacheLine target = mutated(ref, rng, 1);
    RefList refs{&ref};
    std::size_t with = c.compress(target, refs).sizeBits();
    std::size_t without = c.compress(target, {}).sizeBits();
    EXPECT_LT(with, without);
}

// ---------------------------------------------------------------------
// BDI specifics
// ---------------------------------------------------------------------

TEST(Bdi, ZeroLineIsHeaderOnly)
{
    Bdi b;
    EXPECT_EQ(b.compress(CacheLine{}, {}).sizeBits(), 4u);
}

TEST(Bdi, RepeatedLineIsBaseOnly)
{
    Bdi b;
    CacheLine l;
    for (unsigned i = 0; i < 8; ++i)
        l.setWord64(i, 0x1122334455667788ull);
    EXPECT_EQ(b.compress(l, {}).sizeBits(), 4u + 64u);
}

TEST(Bdi, Base8Delta1)
{
    Bdi b;
    CacheLine l;
    for (unsigned i = 0; i < 8; ++i)
        l.setWord64(i, 0x7000000000000000ull + i);
    // header + 8B base + 8 x (flag + 1B delta)
    EXPECT_EQ(b.compress(l, {}).sizeBits(), 4u + 64u + 8u * 9u);
    EXPECT_EQ(b.decompress(b.compress(l, {}), {}), l);
}

TEST(Bdi, ImmediateMixesPointerAndSmallInt)
{
    Bdi b;
    CacheLine l;
    for (unsigned i = 0; i < 8; ++i)
        l.setWord64(i, i % 2 ? 0x7fff000000000100ull + i : i);
    BitVec enc = b.compress(l, {});
    EXPECT_LT(enc.sizeBits(), 4u + 512u);
    EXPECT_EQ(b.decompress(enc, {}), l);
}

TEST(Bdi, NegativeDeltasRoundTrip)
{
    Bdi b;
    CacheLine l;
    for (unsigned i = 0; i < 8; ++i)
        l.setWord64(i, 0x8000000000000000ull - i * 3);
    BitVec enc = b.compress(l, {});
    EXPECT_EQ(b.decompress(enc, {}), l);
}

TEST(Bdi, IncompressibleFallsBackToRaw)
{
    Bdi b;
    Rng rng(23);
    CacheLine l = randomLine(rng);
    EXPECT_EQ(b.compress(l, {}).sizeBits(), 4u + 512u);
}

// ---------------------------------------------------------------------
// LBE specifics
// ---------------------------------------------------------------------

TEST(Lbe, FullLineCopyIsOneToken)
{
    Lbe lbe;
    Rng rng(31);
    CacheLine ref = randomLine(rng);
    RefList refs{&ref};
    BitVec enc = lbe.compress(ref, refs);
    // 2-bit op + offset (5 bits: 16-word dict + 16-word self
    // window) + 4-bit length.
    EXPECT_EQ(enc.sizeBits(), 2u + 5u + 4u);
    EXPECT_EQ(lbe.decompress(enc, refs), ref);
}

TEST(Lbe, ZeroRunsAreCheap)
{
    Lbe lbe;
    BitVec enc = lbe.compress(CacheLine{}, {});
    EXPECT_EQ(enc.sizeBits(), 6u); // one zero-run token
}

TEST(Lbe, AlignedBlockCopyBeatsCpackOnNearDuplicates)
{
    // The §VI-E insight: LBE copies large aligned blocks cheaply.
    Lbe lbe;
    Cpack cpack;
    Rng rng(37);
    CacheLine ref = randomLine(rng);
    CacheLine target = mutated(ref, rng, 1);
    RefList refs{&ref};
    EXPECT_LT(lbe.compress(target, refs).sizeBits(),
              cpack.compress(target, refs).sizeBits());
}

TEST(Lbe, StreamingDictionaryRoundTrip)
{
    Lbe::Config cfg;
    cfg.persistent = true;
    Lbe enc_side(cfg), dec_side(cfg);
    Rng rng(41);
    CacheLine base = sparseLine(rng, 0.3);
    for (int i = 0; i < 20; ++i) {
        CacheLine l = mutated(base, rng, 1);
        BitVec enc = enc_side.compress(l, {});
        ASSERT_EQ(dec_side.decompress(enc, {}), l);
    }
}

TEST(Lbe, StreamingGetsBetterOnRepeats)
{
    Lbe::Config cfg;
    cfg.persistent = true;
    Lbe lbe(cfg);
    Rng rng(43);
    CacheLine a = randomLine(rng);
    std::size_t first = lbe.compress(a, {}).sizeBits();
    std::size_t second = lbe.compress(a, {}).sizeBits();
    EXPECT_LT(second, first);
}

// ---------------------------------------------------------------------
// LZSS / gzip specifics
// ---------------------------------------------------------------------

TEST(Lzss, StreamingWindowRoundTripManyLines)
{
    Lzss enc_side, dec_side;
    Rng rng(47);
    CacheLine base = sparseLine(rng, 0.3);
    for (int i = 0; i < 600; ++i) {
        CacheLine l = i % 3 ? mutated(base, rng, 2) : randomLine(rng);
        BitVec enc = enc_side.compress(l, {});
        ASSERT_EQ(dec_side.decompress(enc, {}), l) << "line " << i;
    }
}

TEST(Lzss, WindowFindsOldLines)
{
    Lzss lz;
    Rng rng(53);
    CacheLine a = randomLine(rng);
    lz.compress(a, {});
    // 100 unrelated lines later (well within 32KB = 512 lines), the
    // duplicate should still compress extremely well.
    for (int i = 0; i < 100; ++i) {
        CacheLine f = randomLine(rng);
        lz.compress(f, {});
    }
    std::size_t dup = lz.compressedBits(a, {});
    EXPECT_LT(dup, 100u);
}

TEST(Lzss, WindowForgetsBeyondCapacity)
{
    Lzss::Config cfg;
    cfg.window_bytes = 4096; // 64 lines
    Lzss lz(cfg);
    Rng rng(59);
    CacheLine a = randomLine(rng);
    lz.compress(a, {});
    for (int i = 0; i < 200; ++i) { // flush the window
        CacheLine f = randomLine(rng);
        lz.compress(f, {});
    }
    std::size_t dup = lz.compressedBits(a, {});
    EXPECT_GT(dup, 400u); // no trace of the old duplicate
}

TEST(Lzss, DictionaryPollutionDegradesInterleavedStreams)
{
    // The §VI-C effect: interleave a compressible stream with a
    // random one and the compressible stream gets worse because the
    // window is shared.
    Lzss::Config cfg;
    cfg.window_bytes = 4096;
    Rng rng(61);
    std::vector<CacheLine> pool;
    CacheLine base = sparseLine(rng, 0.3);
    for (int i = 0; i < 64; ++i)
        pool.push_back(mutated(base, rng, 2));

    Lzss alone(cfg);
    std::size_t alone_bits = 0;
    for (const CacheLine &l : pool)
        alone_bits += alone.compress(l, {}).sizeBits();

    Lzss shared(cfg);
    std::size_t shared_bits = 0;
    Rng rng2(62);
    for (const CacheLine &l : pool) {
        shared_bits += shared.compress(l, {}).sizeBits();
        for (int k = 0; k < 3; ++k) { // polluting stream
            CacheLine noise = randomLine(rng2);
            shared.compress(noise, {});
        }
    }
    EXPECT_GT(shared_bits, alone_bits);
}

TEST(Lzss, RefSeededCatchesByteShifts)
{
    Lzss::Config cfg;
    cfg.persistent = false;
    Lzss lz(cfg);
    Rng rng(67);
    CacheLine ref = randomLine(rng);
    CacheLine shifted;
    for (unsigned b = 0; b < kLineBytes; ++b)
        shifted.setByte(b, ref.byte((b + 1) % kLineBytes));
    RefList refs{&ref};
    std::size_t bits = lz.compress(shifted, refs).sizeBits();
    EXPECT_LT(bits, 150u); // essentially one long match
    EXPECT_EQ(lz.decompress(lz.compress(shifted, refs), refs),
              shifted);
}

// ---------------------------------------------------------------------
// Oracle specifics
// ---------------------------------------------------------------------

TEST(Oracle, NeverWorseThanAllLiterals)
{
    Oracle o;
    Rng rng(71);
    for (int i = 0; i < 20; ++i) {
        CacheLine l = randomLine(rng);
        EXPECT_LE(o.compress(l, {}).sizeBits(), 9u * kLineBytes);
    }
}

TEST(Oracle, ExactDuplicateIsOneCopyToken)
{
    Oracle o;
    Rng rng(73);
    CacheLine ref = randomLine(rng);
    RefList refs{&ref};
    BitVec enc = o.compress(ref, refs);
    // Selector bit plus one copy token, whichever representation
    // (byte DP or word-aligned) is cheaper.
    EXPECT_LE(enc.sizeBits(), 16u);
    EXPECT_EQ(o.decompress(enc, refs), ref);
}

TEST(Oracle, HandlesUnalignedDuplicates)
{
    Oracle o;
    Lbe lbe;
    Rng rng(79);
    CacheLine ref = randomLine(rng);
    CacheLine shifted;
    for (unsigned b = 0; b < kLineBytes; ++b)
        shifted.setByte(b, ref.byte((b + 3) % kLineBytes));
    RefList refs{&ref};
    std::size_t oracle_bits = o.compress(shifted, refs).sizeBits();
    std::size_t lbe_bits = lbe.compress(shifted, refs).sizeBits();
    EXPECT_LT(oracle_bits, lbe_bits); // word-aligned engines miss it
    EXPECT_EQ(o.decompress(o.compress(shifted, refs), refs), shifted);
}

TEST(Oracle, SelfReferencesWithinLine)
{
    Oracle o;
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, 0xabcd1234);
    BitVec enc = o.compress(l, {});
    // First 4ish literal bytes then long self-copies.
    EXPECT_LT(enc.sizeBits(), 100u);
    EXPECT_EQ(o.decompress(enc, {}), l);
}

// ---------------------------------------------------------------------
// ZeroRun & factory & ideal model
// ---------------------------------------------------------------------

TEST(ZeroRun, SizesAreExact)
{
    ZeroRun z;
    EXPECT_EQ(z.compress(CacheLine{}, {}).sizeBits(), kWordsPerLine);
    CacheLine full = CacheLine::filledWords(5);
    EXPECT_EQ(z.compress(full, {}).sizeBits(), kWordsPerLine * 33u);
}

TEST(Factory, AllNamesConstruct)
{
    for (const std::string &name : compressorNames()) {
        auto eng = makeCompressor(name);
        ASSERT_NE(eng, nullptr);
        EXPECT_FALSE(eng->name().empty());
    }
}

TEST(Factory, UnknownNameDies)
{
    EXPECT_EXIT(makeCompressor("nope"),
                ::testing::ExitedWithCode(1), "unknown compressor");
}

TEST(IdealModel, HitsAreCheaperWithoutPointerCost)
{
    Rng rng(83);
    std::vector<CacheLine> lines;
    CacheLine base = sparseLine(rng, 0.2);
    for (int i = 0; i < 100; ++i)
        lines.push_back(mutated(base, rng, 1));

    IdealDictModel ideal(1 << 16, false);
    IdealDictModel with_ptr(1 << 16, true);
    std::size_t ideal_bits = 0, ptr_bits = 0;
    for (const CacheLine &l : lines) {
        ideal_bits += ideal.sizeLine(l);
        ptr_bits += with_ptr.sizeLine(l);
    }
    EXPECT_LT(ideal_bits, ptr_bits);
}

TEST(IdealModel, BiggerDictionaryNeverHurtsIdealCurve)
{
    Rng rng(89);
    std::vector<CacheLine> lines;
    for (int i = 0; i < 400; ++i) {
        CacheLine base = CacheLine::filledWords(
            static_cast<std::uint32_t>(i % 50 + 0x1000));
        lines.push_back(mutated(base, rng, 4));
    }
    std::size_t small_bits = 0, big_bits = 0;
    IdealDictModel small(256, false), big(1 << 20, false);
    for (const CacheLine &l : lines) {
        small_bits += small.sizeLine(l);
        big_bits += big.sizeLine(l);
    }
    EXPECT_LE(big_bits, small_bits);
}

// ---------------------------------------------------------------------
// FPC specifics
// ---------------------------------------------------------------------

TEST(Fpc, ZeroRunsAreSixBits)
{
    Fpc f;
    // 16 zero words = two 8-word runs of 6 bits each.
    EXPECT_EQ(f.compress(CacheLine{}, {}).sizeBits(), 12u);
}

TEST(Fpc, SignExtendedImmediates)
{
    Fpc f;
    CacheLine l;
    l.setWord(0, 0x00000007);  // 4-bit
    l.setWord(1, 0xfffffff9);  // 4-bit negative
    l.setWord(2, 0x0000007f);  // 8-bit
    l.setWord(3, 0xffffff80);  // 8-bit negative
    l.setWord(4, 0x00007fff);  // 16-bit
    l.setWord(5, 0xffff8000);  // 16-bit negative
    l.setWord(6, 0x12340000);  // halfword padded
    l.setWord(7, 0x00ffff85);  // none: uncompressed (hi=255)
    l.setWord(8, 0x00120043);  // two sign-extended halfwords
    l.setWord(9, 0xababdead);  // uncompressed
    l.setWord(10, 0x55555555); // repeated bytes
    BitVec enc = f.compress(l, {});
    EXPECT_EQ(f.decompress(enc, {}), l);
    // 2 zero-run tokens for words 11..15 plus one run boundary case:
    // exact size: words 0..10 plus one 5-word zero run.
    std::size_t expected = (3 + 4) * 2 + (3 + 8) * 2 + (3 + 16) * 2
                           + (3 + 16)       // half padded
                           + (3 + 32)       // 0x00ffff85
                           + (3 + 16)       // two halfwords
                           + (3 + 32)       // 0xababdead
                           + (3 + 8)        // repeated bytes
                           + 6;             // zero run 11..15
    EXPECT_EQ(enc.sizeBits(), expected);
}

TEST(Fpc, NegativeHalfwordsRoundTrip)
{
    Fpc f;
    CacheLine l;
    l.setWord(0, 0xffaf0011); // hi=-81, lo=17 both 8-bit
    l.setWord(1, 0x004cffd3); // hi=76, lo=-45
    BitVec enc = f.compress(l, {});
    EXPECT_EQ(f.decompress(enc, {}), l);
}
