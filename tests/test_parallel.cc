/**
 * @file
 * Determinism tests for the worker-pool driver: parallelFor must
 * cover every index exactly once and propagate failures, and a
 * MultiChipBatch must produce bit-identical merged statistics for
 * every worker count (the `--jobs N == --jobs 1` contract in
 * common/worker_pool.h).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cache/cache.h"
#include "common/alloc_guard.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/channel.h"
#include "sim/multichip.h"
#include "workload/profile.h"
#include "workload/value_model.h"

using namespace cable;

namespace
{

std::string
dumped(const StatSet &s)
{
    std::ostringstream os;
    s.dump(os);
    return os.str();
}

} // namespace

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (unsigned jobs : {0u, 1u, 2u, 7u, 64u}) {
        std::vector<std::atomic<int>> hits(100);
        parallelFor(hits.size(), jobs,
                    [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, ZeroWorkIsANoop)
{
    bool ran = false;
    parallelFor(0, 8, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, WritesToPerIndexSlotsInOrder)
{
    std::vector<std::size_t> slots(257, 0);
    parallelFor(slots.size(), 8,
                [&](std::size_t i) { slots[i] = i * i; });
    for (std::size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i], i * i);
}

TEST(ParallelFor, RethrowsWorkerExceptionAfterJoin)
{
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(parallelFor(hits.size(), 4,
                             [&](std::size_t i) {
                                 ++hits[i];
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // Remaining indices still ran despite the failure.
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, InlineWhenSingleJob)
{
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids(8);
    parallelFor(ids.size(), 1, [&](std::size_t i) {
        ids[i] = std::this_thread::get_id();
    });
    for (const auto &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(HardwareJobs, AtLeastOne) { EXPECT_GE(hardwareJobs(), 1u); }

TEST(MultiChipBatch, SingleReplicaMatchesPlainSystem)
{
    MultiChipConfig cfg;
    cfg.seed = 42;
    const WorkloadProfile &prof = benchmarkProfile("mcf");

    MultiChipSystem plain(cfg, prof);
    plain.run(20000);

    MultiChipBatch batch(cfg, prof, 1);
    MultiChipBatchResult res = batch.run(20000, 4);

    EXPECT_EQ(dumped(res.link_stats), dumped(plain.linkStats()));
    EXPECT_DOUBLE_EQ(res.bit_ratio, plain.bitRatio());
    EXPECT_DOUBLE_EQ(res.effective_ratio, plain.effectiveRatio());
}

TEST(MultiChipBatch, JobsCountNeverChangesMergedStats)
{
    MultiChipConfig cfg;
    cfg.seed = 7;
    const WorkloadProfile &prof = benchmarkProfile("omnetpp");
    const unsigned replicas = 5;
    const std::uint64_t ops = 8000;

    MultiChipBatch batch(cfg, prof, replicas);
    MultiChipBatchResult ref = batch.run(ops, 1);
    for (unsigned jobs : {2u, 3u, 8u}) {
        MultiChipBatchResult res = batch.run(ops, jobs);
        EXPECT_EQ(dumped(res.link_stats), dumped(ref.link_stats))
            << "jobs=" << jobs;
        EXPECT_DOUBLE_EQ(res.bit_ratio, ref.bit_ratio);
        EXPECT_DOUBLE_EQ(res.effective_ratio, ref.effective_ratio);
    }
}

TEST(MultiChipBatch, ReplicaConfigsAreDistinctAndStable)
{
    MultiChipConfig cfg;
    cfg.seed = 3;
    MultiChipBatch batch(cfg, benchmarkProfile("mcf"), 4);

    // Replica 0 is the base config untouched.
    EXPECT_EQ(batch.replicaConfig(0).seed, cfg.seed);
    EXPECT_EQ(batch.replicaConfig(0).cable.hash_seed,
              cfg.cable.hash_seed);

    // Later replicas: derived seeds, pure function of the index.
    std::set<std::uint64_t> seeds;
    for (unsigned r = 0; r < 4; ++r) {
        MultiChipConfig a = batch.replicaConfig(r);
        MultiChipConfig b = batch.replicaConfig(r);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.cable.hash_seed, b.cable.hash_seed);
        seeds.insert(a.seed);
    }
    EXPECT_EQ(seeds.size(), 4u);
}

// ---------------------------------------------------------------------
// Encode-path allocation guard (runtime twin of lint rule R001)
// ---------------------------------------------------------------------

TEST(AllocGuard, HooksAreLinkedIntoThisBinary)
{
    // hooksLinked() only resolves when alloc_guard_hooks.cc is in
    // the link (the cable_alloc_hooks target), and its static
    // initializer must have flipped the installed flag.
    EXPECT_TRUE(alloc_guard::hooksLinked());
    EXPECT_TRUE(alloc_guard::hooksInstalled());
}

TEST(AllocGuard, ScopeObservesHeapAllocations)
{
    alloc_guard::Scope scope;
    EXPECT_EQ(scope.allocations(), 0u);
    {
        std::vector<int> v(1024, 7);
        // Keep the vector alive past the read so the allocation
        // cannot be elided.
        EXPECT_EQ(v[512], 7);
        EXPECT_GE(scope.allocations(), 1u);
    }
}

TEST(AllocGuard, SteadyStateEncodeSearchIsAllocationFree)
{
    // The search pipeline (extract -> probe -> rank -> CBV ->
    // select) runs out of SearchScratch, whose containers keep
    // their high-water capacity. After a warm-up phase the
    // channel's own per-search counter must therefore stop moving:
    // zero heap allocations per steady-state encode search.
    Cache home({"home", 1u << 20, 8});
    Cache remote({"remote", 256u << 10, 8});
    CableChannel channel(home, remote, CableConfig{});

    ValueProfile vp;
    vp.template_count = 16;
    vp.region_lines = 8;
    vp.template_vocab = 6;
    vp.mutation_rate = 0.05;
    SyntheticMemory mem(vp, 0, 21);
    Rng rng(22);

    auto fetch = [&](Addr addr) {
        if (remote.access(addr))
            return;
        if (!home.probe(addr))
            (void)channel.homeInstall(addr, mem.lineAt(addr));
        (void)channel.remoteFetch(addr, false);
    };

    // Warm-up: drive enough distinct lines through both compress
    // paths that every scratch container reaches its high-water
    // capacity (the footprint exceeds the remote cache, so searches
    // keep happening instead of degenerating into remote hits).
    for (int i = 0; i < 4000; ++i)
        fetch(rng.below(1 << 13) * kLineBytes);

    std::uint64_t searches_before = channel.stats().get("searches");
    std::uint64_t allocs_before =
        channel.stats().get("search_allocs");
    for (int i = 0; i < 4000; ++i)
        fetch(rng.below(1 << 13) * kLineBytes);
    std::uint64_t new_searches =
        channel.stats().get("searches") - searches_before;

    EXPECT_GT(new_searches, 500u) << "workload stopped searching; "
                                     "the assertion below is vacuous";
    EXPECT_EQ(channel.stats().get("search_allocs"), allocs_before)
        << "steady-state encode search touched the heap";
}

TEST(MultiChipBatch, MergedStatsScaleWithReplicas)
{
    MultiChipConfig cfg;
    cfg.seed = 11;
    const WorkloadProfile &prof = benchmarkProfile("mcf");
    MultiChipBatch one(cfg, prof, 1);
    MultiChipBatch four(cfg, prof, 4);
    std::uint64_t t1 =
        one.run(6000, 2).link_stats.get("transfers");
    std::uint64_t t4 =
        four.run(6000, 2).link_stats.get("transfers");
    EXPECT_GT(t1, 0u);
    // Four independent replicas move roughly four times the
    // transfers (not exactly: different seeds, different traffic).
    EXPECT_GT(t4, 2 * t1);
}
