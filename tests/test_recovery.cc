/**
 * @file
 * Crash-recovery tests (DESIGN.md §12): checkpoint capture/restore
 * round-trips, typed rejection of every corruption class, atomic
 * file save/load, format stability against a committed golden
 * image, the resync protocol's Degraded→Healthy guarantee, the ARQ
 * watchdog's terminal timeout, and the chaos harness's differential
 * oracle over a ≥10-crash schedule.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "common/crc.h"
#include "common/rng.h"
#include "compress/bitstream.h"
#include "core/channel.h"
#include "core/checkpoint.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/resync.h"
#include "workload/profile.h"
#include "workload/value_model.h"

using namespace cable;

namespace
{

struct Rig
{
    Cache home;
    Cache remote;
    CableChannel channel;

    explicit Rig(const CableConfig &cfg = CableConfig{})
        : home({"home", 1u << 20, 8}), remote({"remote", 256u << 10, 8}),
          channel(home, remote, cfg)
    {
    }

    FetchResult
    fetch(SyntheticMemory &mem, Addr addr, bool store = false)
    {
        if (remote.access(addr)) {
            if (store && !remote.entryAt(remote.find(addr)).dirty())
                channel.remoteUpgrade(addr);
            return FetchResult{};
        }
        if (!home.probe(addr))
            (void)channel.homeInstall(addr, mem.lineAt(addr));
        return channel.remoteFetch(addr, store);
    }
};

ValueProfile
similarValues()
{
    ValueProfile v;
    v.zero_line_frac = 0.1;
    v.zero_word_frac = 0.3;
    v.template_count = 16;
    v.region_lines = 8;
    v.template_vocab = 6;
    v.mutation_rate = 0.05;
    v.random_line_frac = 0.05;
    return v;
}

/** Drives a deterministic warm-up mix through the rig. */
void
warm(Rig &rig, SyntheticMemory &mem, unsigned ops, std::uint64_t seed)
{
    Rng rng(seed);
    for (unsigned i = 0; i < ops; ++i) {
        Addr addr = (rng.below(512) * 64) & ~Addr{63};
        (void)rig.fetch(mem, addr, rng.chance(0.2));
    }
}

/** Every-packet corruptor: ARQ can never succeed under it. */
struct AlwaysCorrupt : LinkFaultModel
{
    unsigned
    corruptPacket(BitVec &wire) override
    {
        if (wire.sizeBits() == 0)
            return 0;
        wire.flipBit(0);
        return 1;
    }
    bool dropSyncMessage() override { return false; }
    bool corruptMetadata() override { return false; }
    std::uint64_t pick(std::uint64_t) override { return 0; }
};

std::uint64_t
fullDigest(const CableChannel &ch)
{
    return ch.metadataDigest(0, 1u << 30);
}

} // namespace

// ---------------------------------------------------------------------
// Checkpoint image format
// ---------------------------------------------------------------------

TEST(Checkpoint, CaptureIsDeterministic)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 11);
    warm(rig, mem, 600, 11);
    BitVec a = ChannelCheckpoint::capture(rig.channel);
    BitVec b = ChannelCheckpoint::capture(rig.channel);
    ASSERT_EQ(a.sizeBits(), b.sizeBits());
    for (std::size_t i = 0; i < a.sizeBits(); ++i)
        ASSERT_EQ(a.bit(i), b.bit(i)) << "bit " << i;
}

TEST(Checkpoint, RoundTripRestoresStateAndBumpsEpoch)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 12);
    warm(rig, mem, 800, 12);

    std::uint64_t digest0 = fullDigest(rig.channel);
    std::uint64_t transfers0 = rig.channel.stats().get("transfers");
    std::uint64_t epoch0 = rig.channel.epoch();
    BitVec image = ChannelCheckpoint::capture(rig.channel);

    // Mutate well past the captured state.
    warm(rig, mem, 800, 13);
    EXPECT_NE(rig.channel.stats().get("transfers"), transfers0);

    ChannelCheckpoint::restore(rig.channel, image);
    EXPECT_EQ(fullDigest(rig.channel), digest0);
    EXPECT_EQ(rig.channel.stats().get("transfers"), transfers0);
    EXPECT_EQ(rig.channel.stats().get("checkpoint_restores"), 1u);
    EXPECT_GT(rig.channel.epoch(), epoch0);

    // The caches moved on since the capture, so the restored
    // metadata is stale — exactly the state the resync protocol
    // reconciles. After it, the channel must decode cleanly again.
    EXPECT_TRUE(ResyncSession(rig.channel).run().completed);
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);
    warm(rig, mem, 400, 14);
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);
}

TEST(Checkpoint, EveryCorruptionClassRejectedTyped)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 15);
    warm(rig, mem, 500, 15);
    const BitVec image = ChannelCheckpoint::capture(rig.channel);
    const std::uint64_t digest0 = fullDigest(rig.channel);

    auto expectKind = [&](const BitVec &bad,
                          CableCheckpointError::Kind kind) {
        try {
            ChannelCheckpoint::restore(rig.channel, bad);
            FAIL() << "corrupt image accepted (expected "
                   << CableCheckpointError::kindName(kind) << ")";
        } catch (const CableCheckpointError &e) {
            EXPECT_EQ(e.kind(), kind) << e.what();
        }
        // Strong guarantee: a rejected load changes nothing.
        EXPECT_EQ(fullDigest(rig.channel), digest0);
    };

    {
        BitVec bad = image; // body bit-flip
        bad.flipBit(kCkptHeaderBits + 17);
        expectKind(bad, CableCheckpointError::Kind::CrcMismatch);
    }
    {
        BitVec bad = image; // magic damage
        bad.flipBit(3);
        expectKind(bad, CableCheckpointError::Kind::BadMagic);
    }
    {
        BitVec bad = image; // version skew
        bad.flipBit(kCkptMagicBits + kCkptVersionBits - 1);
        expectKind(bad, CableCheckpointError::Kind::VersionSkew);
    }
    {
        BitVec bad; // truncated inside the body
        for (std::size_t i = 0; i < image.sizeBits() / 2; ++i)
            bad.pushBit(image.bit(i));
        expectKind(bad, CableCheckpointError::Kind::Truncated);
    }
    {
        BitVec bad; // truncated inside the header
        for (std::size_t i = 0; i + 5 < kCkptHeaderBits; ++i)
            bad.pushBit(image.bit(i));
        expectKind(bad, CableCheckpointError::Kind::Truncated);
    }
    {
        BitVec bad = image; // a byte of trailing garbage
        for (int i = 0; i < 8; ++i)
            bad.pushBit(i & 1);
        expectKind(bad, CableCheckpointError::Kind::BadSection);
    }
    expectKind(BitVec{}, CableCheckpointError::Kind::Truncated);
}

TEST(Checkpoint, GeometryMismatchRejected)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 16);
    warm(rig, mem, 300, 16);
    BitVec image = ChannelCheckpoint::capture(rig.channel);

    Cache home({"home", 1u << 20, 8});
    Cache remote({"remote", 128u << 10, 8}); // half the remote sets
    CableChannel other(home, remote, CableConfig{});
    EXPECT_THROW(ChannelCheckpoint::restore(other, image),
                 CableCheckpointError);
    try {
        ChannelCheckpoint::restore(other, image);
    } catch (const CableCheckpointError &e) {
        EXPECT_EQ(e.kind(),
                  CableCheckpointError::Kind::GeometryMismatch);
    }
}

// ---------------------------------------------------------------------
// Per-section malformed images
// ---------------------------------------------------------------------

namespace
{

/** One tagged section located inside a checkpoint image. */
struct Section
{
    std::uint32_t tag;
    std::size_t begin; ///< image bit offset of the section tag
    std::size_t end;   ///< one past the section's last bit
};

/**
 * Independent test-side walker over the kCkpt* layout: locates every
 * tagged section of a pristine image without reusing the production
 * reader, so a layout change that desynchronizes the two shows up as
 * a test failure rather than silent agreement.
 */
std::vector<Section>
walkSections(const BitVec &image)
{
    BitReader r(image);
    EXPECT_EQ(r.get(kCkptMagicBits), kCkptMagic);
    EXPECT_EQ(r.get(kCkptVersionBits), kCkptVersion);
    std::size_t body_end =
        kCkptHeaderBits
        + static_cast<std::size_t>(r.get(kCkptBodyLenBits));
    std::vector<Section> secs;
    auto open = [&](std::uint32_t want) {
        secs.push_back({want, r.pos(), r.pos()});
        EXPECT_EQ(r.get(kCkptSectionTagBits), want);
    };
    auto close = [&] { secs.back().end = r.pos(); };

    open(kCkptTagGeom);
    std::uint64_t remote_sets = r.get(kCkptSetBits);
    std::uint64_t remote_ways = r.get(kCkptWayBits);
    (void)r.get(kCkptSetBits);  // home_sets
    (void)r.get(kCkptWayBits);  // home_ways
    (void)r.get(kCkptRlidBits);
    std::uint64_t home_buckets = r.get(kCkptBucketCountBits);
    (void)r.get(kCkptBucketWaysBits);
    std::uint64_t remote_buckets = r.get(kCkptBucketCountBits);
    (void)r.get(kCkptBucketWaysBits);
    (void)r.get(kCkptEvbufCapBits);
    close();

    open(kCkptTagChannel);
    (void)r.get(kCkptHealthBits);
    for (int i = 0; i < 3; ++i)
        (void)r.get(kCkptCountBits);
    (void)r.get(kCkptFlagBits);
    close();

    open(kCkptTagWmt);
    for (int i = 0; i < 5; ++i)
        (void)r.get(kCkptCountBits);
    for (std::uint64_t s = 0; s < remote_sets * remote_ways; ++s)
        if (r.get(kCkptFlagBits))
            (void)r.get(kCkptNormBits);
    close();

    const std::uint32_t ht_tags[2] = {kCkptTagHtHome,
                                      kCkptTagHtRemote};
    const std::uint64_t ht_buckets[2] = {home_buckets,
                                         remote_buckets};
    for (int t = 0; t < 2; ++t) {
        open(ht_tags[t]);
        for (int i = 0; i < 8; ++i)
            (void)r.get(kCkptCountBits);
        for (std::uint64_t b = 0; b < ht_buckets[t]; ++b) {
            std::uint64_t len = r.get(kCkptSlotCountBits);
            for (std::uint64_t s = 0; s < len; ++s) {
                (void)r.get(kCkptSetBits);
                (void)r.get(kCkptWayBits);
                (void)r.get(kCkptCountBits);
            }
        }
        close();
    }

    open(kCkptTagEvbuf);
    for (int i = 0; i < 6; ++i)
        (void)r.get(kCkptCountBits);
    std::uint64_t ev_len = r.get(kCkptEvbufLenBits);
    for (std::uint64_t e = 0; e < ev_len; ++e) {
        (void)r.get(kCkptCountBits);
        (void)r.get(kCkptSetBits);
        (void)r.get(kCkptWayBits);
        for (unsigned i = 0; i < kLineBytes; ++i)
            (void)r.get(kCkptByteBits);
    }
    close();

    open(kCkptTagCounters);
    std::uint64_t ncounters = r.get(kCkptNumCountersBits);
    for (std::uint64_t c = 0; c < ncounters; ++c) {
        std::uint64_t len = r.get(kCkptNameLenBits);
        for (std::uint64_t i = 0; i < len; ++i)
            (void)r.get(kCkptByteBits);
        (void)r.get(kCkptCountBits);
    }
    close();

    EXPECT_EQ(r.pos(), body_end);
    return secs;
}

/**
 * Rebuilds a well-formed image around @p body: fresh header with the
 * body's true length and a recomputed CRC, so a tampered body tests
 * the section validation rather than tripping the integrity check.
 */
BitVec
sealImage(const std::vector<bool> &body)
{
    BitWriter bw;
    bw.put(kCkptMagic, kCkptMagicBits);
    bw.put(kCkptVersion, kCkptVersionBits);
    bw.put(body.size(), kCkptBodyLenBits);
    for (bool b : body)
        bw.put(b ? 1u : 0u, 1);
    std::uint16_t crc = crc16Bits(bw.bits(), 0, bw.sizeBits());
    bw.put(crc, kCkptCrcBits);
    return bw.take();
}

std::vector<bool>
bodyBits(const BitVec &image, std::size_t end)
{
    std::vector<bool> body;
    for (std::size_t i = kCkptHeaderBits; i < end; ++i)
        body.push_back(image.bit(i));
    return body;
}

void
expectBadSection(CableChannel &ch, const BitVec &bad,
                 std::uint64_t digest0, const char *what)
{
    try {
        ChannelCheckpoint::restore(ch, bad);
        FAIL() << what << ": malformed image accepted";
    } catch (const CableCheckpointError &e) {
        EXPECT_EQ(e.kind(), CableCheckpointError::Kind::BadSection)
            << what << ": " << e.what();
    }
    // Strong guarantee: a rejected load changes nothing.
    EXPECT_EQ(ch.metadataDigest(0, 1u << 30), digest0) << what;
}

} // namespace

TEST(CheckpointSections, TruncatedInsideEverySectionRejectedTyped)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 17);
    warm(rig, mem, 500, 17);
    const BitVec image = ChannelCheckpoint::capture(rig.channel);
    const std::uint64_t digest0 = fullDigest(rig.channel);

    auto secs = walkSections(image);
    ASSERT_EQ(secs.size(), 7u);
    for (const Section &sec : secs) {
        // Cut one byte past the tag: the section opens cleanly, then
        // its first field read crosses the (consistently re-declared)
        // body end — the reader must name the section, not crash or
        // misparse the truncation as a CRC or length problem.
        std::size_t cut = sec.begin + kCkptSectionTagBits + 8;
        ASSERT_LT(cut, sec.end);
        BitVec bad = sealImage(bodyBits(image, cut));
        expectBadSection(rig.channel, bad, digest0,
                         "truncated section");
    }
}

TEST(CheckpointSections, DuplicatedTagEverySectionRejectedTyped)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 18);
    warm(rig, mem, 500, 18);
    const BitVec image = ChannelCheckpoint::capture(rig.channel);
    const std::uint64_t digest0 = fullDigest(rig.channel);

    auto secs = walkSections(image);
    ASSERT_EQ(secs.size(), 7u);
    for (std::size_t si = 0; si < secs.size(); ++si) {
        // Overwrite the section's tag with its predecessor's (the
        // last section's for the first): a duplicated tag must fail
        // the expectation for the section that should be there.
        std::uint32_t dup =
            secs[si > 0 ? si - 1 : secs.size() - 1].tag;
        std::vector<bool> body =
            bodyBits(image, image.sizeBits() - kCkptCrcBits);
        for (unsigned b = 0; b < kCkptSectionTagBits; ++b)
            body[secs[si].begin - kCkptHeaderBits + b] =
                (dup >> (kCkptSectionTagBits - 1 - b)) & 1;
        expectBadSection(rig.channel, sealImage(body), digest0,
                         "duplicated tag");
    }
}

TEST(CheckpointSections, TrailingBitsAfterEverySectionRejectedTyped)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 19);
    warm(rig, mem, 500, 19);
    const BitVec image = ChannelCheckpoint::capture(rig.channel);
    const std::uint64_t digest0 = fullDigest(rig.channel);

    auto secs = walkSections(image);
    ASSERT_EQ(secs.size(), 7u);
    for (const Section &sec : secs) {
        // Insert a zero byte after the section, with the length and
        // CRC consistently recomputed: the next section's tag reads
        // junk (or, for the last section, the body outlives its
        // sections) and the reader must reject rather than resync.
        std::vector<bool> body =
            bodyBits(image, image.sizeBits() - kCkptCrcBits);
        body.insert(body.begin()
                        + static_cast<std::ptrdiff_t>(
                            sec.end - kCkptHeaderBits),
                    8, false);
        expectBadSection(rig.channel, sealImage(body), digest0,
                         "trailing section bytes");
    }
}

TEST(Checkpoint, AtomicFileSaveLoad)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 17);
    warm(rig, mem, 500, 17);

    std::string path =
        testing::TempDir() + "cable_ckpt_roundtrip.ckpt";
    ChannelCheckpoint::save(rig.channel, path);
    std::uint64_t digest0 = fullDigest(rig.channel);

    warm(rig, mem, 500, 18);
    ChannelCheckpoint::load(rig.channel, path);
    EXPECT_EQ(fullDigest(rig.channel), digest0);
    std::remove(path.c_str());

    EXPECT_THROW(ChannelCheckpoint::load(
                     rig.channel, testing::TempDir() + "nonexistent"),
                 CableCheckpointError);
}

// ---------------------------------------------------------------------
// Format stability: the committed golden fixture must keep loading.
// Regenerate (after a deliberate, version-bumped format change) with
//   CABLE_WRITE_GOLDEN=1 ./test_recovery
//       --gtest_filter=CheckpointFormat.GoldenFixtureLoads
// ---------------------------------------------------------------------

namespace
{

/** The canonical channel state behind the golden fixture. */
BitVec
goldenImage()
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 2026);
    warm(rig, mem, 1000, 2026);
    return ChannelCheckpoint::capture(rig.channel);
}

} // namespace

TEST(CheckpointFormat, GoldenFixtureLoads)
{
    const std::string path =
        std::string(CABLE_TEST_DATA_DIR) + "/checkpoint_v1.golden";
    if (std::getenv("CABLE_WRITE_GOLDEN")) {
        ChannelCheckpoint::writeImage(goldenImage(), path);
        GTEST_SKIP() << "golden fixture regenerated at " << path;
    }

    BitVec image = ChannelCheckpoint::readImage(path);
    Rig rig; // golden geometry: the default Rig
    ChannelCheckpoint::restore(rig.channel, image);
    EXPECT_EQ(rig.channel.stats().get("checkpoint_restores"), 1u);
    EXPECT_GT(rig.channel.stats().get("transfers"), 0u);

    // The fixture is bit-identical to a fresh capture of the same
    // canonical state (modulo the file format's byte-boundary pad):
    // the serializer itself is format-stable.
    BitVec fresh = goldenImage();
    ASSERT_GE(image.sizeBits(), fresh.sizeBits());
    ASSERT_LT(image.sizeBits() - fresh.sizeBits(), 8u);
    for (std::size_t i = 0; i < fresh.sizeBits(); ++i)
        ASSERT_EQ(image.bit(i), fresh.bit(i)) << "bit " << i;
    for (std::size_t i = fresh.sizeBits(); i < image.sizeBits(); ++i)
        ASSERT_FALSE(image.bit(i)) << "pad bit " << i << " set";
}

// ---------------------------------------------------------------------
// Resync protocol
// ---------------------------------------------------------------------

TEST(Resync, ColdRestartReturnsToHealthy)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 21);
    warm(rig, mem, 1000, 21);

    rig.channel.crashMetadata();
    EXPECT_TRUE(rig.channel.degraded());
    EXPECT_EQ(fullDigest(rig.channel), fullDigest(Rig{}.channel));

    ResyncResult r = ResyncSession(rig.channel).run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(rig.channel.health(), CableChannel::Health::Healthy);
    EXPECT_GT(r.lines_relinked, 0u);
    EXPECT_GT(r.handshake_bits, 0u);
    EXPECT_GT(r.rearm_bits, 0u);

    // Honest accounting: recovery_bits is exactly the sum of the
    // handshake and re-arm components.
    const StatSet &st = rig.channel.stats();
    EXPECT_EQ(st.get("recovery_bits"),
              st.get("resync_handshake_bits")
                  + st.get("resync_rearm_bits"));

    // Post-resync metadata equals cache ground truth.
    EXPECT_EQ(rig.channel.metadataDigest(0, 1u << 30),
              rig.channel.referenceDigest(0, 1u << 30));
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);
}

TEST(Resync, WarmRestoreNeedsNoRearmTraffic)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 22);
    warm(rig, mem, 1000, 22);

    BitVec image = ChannelCheckpoint::capture(rig.channel);
    rig.channel.crashMetadata();
    ChannelCheckpoint::restore(rig.channel, image);

    ResyncResult r = ResyncSession(rig.channel).run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(rig.channel.health(), CableChannel::Health::Healthy);
    // The checkpoint already matches ground truth: digests agree on
    // every range, so the handshake finds nothing to repair.
    EXPECT_EQ(r.ranges_repaired, 0u);
    EXPECT_EQ(r.rearm_bits, 0u);
    EXPECT_GT(r.handshake_bits, 0u);
}

TEST(Resync, MidResyncFaultsStillConverge)
{
    FaultConfig fc;
    fc.meta_corrupt_rate = 1.0; // every corruptMetadata() draw fires
    fc.seed = 99;
    FaultInjector inj(fc);

    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 23);
    warm(rig, mem, 1000, 23);
    rig.channel.crashMetadata();
    rig.channel.setFaultModel(&inj);

    ResyncResult r = ResyncSession(rig.channel).run();
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.faults_hit, 0u);
    EXPECT_EQ(rig.channel.health(), CableChannel::Health::Healthy);
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);
}

// ---------------------------------------------------------------------
// ARQ watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, StalledArqRaisesTypedTimeout)
{
    CableConfig cfg;
    cfg.arq_watchdog_cycles = 100;
    Rig rig(cfg);
    SyntheticMemory mem(similarValues(), 0, 31);

    const Addr addr = 0x2040;
    (void)rig.channel.homeInstall(addr, mem.lineAt(addr));

    AlwaysCorrupt hostile;
    rig.channel.setFaultModel(&hostile);
    EXPECT_THROW((void)rig.channel.remoteFetch(addr, false),
                 CableTimeoutError);
    EXPECT_EQ(rig.channel.stats().get("arq_timeouts"), 1u);

    // Recovery after the link heals: crash, resync, retry.
    rig.channel.setFaultModel(nullptr);
    rig.channel.crashMetadata();
    EXPECT_TRUE(ResyncSession(rig.channel).run().completed);
    (void)rig.channel.remoteFetch(addr, false);
    LineID rlid = rig.remote.find(addr);
    ASSERT_TRUE(rlid.valid);
    EXPECT_TRUE(rig.remote.entryAt(rlid).data == mem.lineAt(addr));
}

TEST(Watchdog, DisabledByDefault)
{
    Rig rig; // arq_watchdog_cycles = 0
    SyntheticMemory mem(similarValues(), 0, 32);
    const Addr addr = 0x3040;
    (void)rig.channel.homeInstall(addr, mem.lineAt(addr));

    // Scripted burst long enough to exhaust compressed retries and
    // the raw-fallback ladder would have tripped a 100-cycle budget;
    // with the watchdog off the transfer must still complete.
    FaultConfig fc;
    fc.bit_error_rate = 0.02;
    fc.seed = 7;
    FaultInjector inj(fc);
    rig.channel.setFaultModel(&inj);
    for (unsigned i = 0; i < 50; ++i)
        (void)rig.fetch(mem, addr + i * 64);
    EXPECT_EQ(rig.channel.stats().get("arq_timeouts"), 0u);
}

// ---------------------------------------------------------------------
// Chaos harness: the acceptance demo as a regression test.
// ---------------------------------------------------------------------

TEST(Chaos, TenCrashScheduleSurvivesDifferentialOracle)
{
    ChaosConfig cfg;
    cfg.benchmark = "mcf";
    cfg.ops = 12000;
    cfg.seed = 7;
    cfg.crashes = 10;
    cfg.corrupt_prob = 0.5;
    cfg.mem.fault.bit_error_rate = 1e-4;
    cfg.mem.fault.drop_sync_rate = 2e-3;
    cfg.mem.fault.meta_corrupt_rate = 1e-3;

    ChaosReport r = runChaos(cfg);
    EXPECT_TRUE(r.ok) << r.failure;
    EXPECT_EQ(r.crashes, 10u);
    EXPECT_EQ(r.corrupt_rejected, r.corrupt_images);
    EXPECT_EQ(r.restores_ok + r.corrupt_images, r.crashes);
    // Every crash recovery plus the watchdog scenario resynced.
    EXPECT_EQ(r.resyncs_completed, r.crashes + 1);
    EXPECT_EQ(r.watchdog_timeouts, 1u);
    EXPECT_GT(r.recovery_bits, 0u);
}

TEST(Chaos, FileRoundTripScheduleDeterministic)
{
    ChaosConfig cfg;
    cfg.benchmark = "omnetpp";
    cfg.ops = 6000;
    cfg.seed = 42;
    cfg.crashes = 4;
    cfg.corrupt_prob = 0.25;
    cfg.ckpt_dir = testing::TempDir();
    cfg.watchdog_scenario = false;
    cfg.mem.fault.bit_error_rate = 1e-4;

    ChaosReport a = runChaos(cfg);
    ChaosReport b = runChaos(cfg);
    EXPECT_TRUE(a.ok) << a.failure;
    EXPECT_TRUE(b.ok) << b.failure;
    EXPECT_EQ(a.crash_steps, b.crash_steps);
    EXPECT_EQ(a.transfers, b.transfers);
    EXPECT_EQ(a.recovery_bits, b.recovery_bits);
}
