/**
 * @file
 * Coverage-bit-vector and greedy-ranking tests (§III-C), including
 * the paper's 1100/0110/0011 selection example.
 */

#include <gtest/gtest.h>

#include "core/cbv.h"

using namespace cable;

TEST(Cbv, CoverageVectorMarksMatchingWords)
{
    CacheLine a, b;
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        a.setWord(w, w + 1);
        b.setWord(w, w % 2 ? w + 1 : 0x9999);
    }
    std::uint32_t cbv = coverageVector(a, b);
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        EXPECT_EQ((cbv >> w) & 1, w % 2 ? 1u : 0u);
}

TEST(Cbv, IdenticalLinesFullCoverage)
{
    CacheLine a = CacheLine::filledWords(7);
    EXPECT_EQ(coverageVector(a, a), 0xffffu);
}

TEST(Cbv, PaperExampleSelection)
{
    // CBVs 1100, 0110, 0011: the greedy pass takes 1100 then 0011,
    // dropping 0110 because it adds no new coverage (§III-C).
    std::vector<std::uint32_t> cbvs{0b1100, 0b0110, 0b0011};
    auto picks = selectByCoverage(cbvs, 3);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 0u);
    EXPECT_EQ(picks[1], 2u);
}

TEST(Cbv, MaxRefsLimitsPicks)
{
    std::vector<std::uint32_t> cbvs{0b0001, 0b0010, 0b0100, 0b1000};
    EXPECT_EQ(selectByCoverage(cbvs, 3).size(), 3u);
    EXPECT_EQ(selectByCoverage(cbvs, 1).size(), 1u);
    EXPECT_EQ(selectByCoverage(cbvs, 4).size(), 4u);
}

TEST(Cbv, ZeroGainCandidatesDropped)
{
    std::vector<std::uint32_t> cbvs{0xffff, 0x00ff, 0xff00};
    auto picks = selectByCoverage(cbvs, 3);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0], 0u);
}

TEST(Cbv, EmptyCandidates)
{
    std::vector<std::uint32_t> none;
    EXPECT_TRUE(selectByCoverage(none, 3).empty());
    std::vector<std::uint32_t> zeros{0, 0, 0};
    EXPECT_TRUE(selectByCoverage(zeros, 3).empty());
}

TEST(Cbv, TieBreaksTowardPreRankOrder)
{
    // Equal gain: the earlier (more duplicated in pre-rank) index
    // wins.
    std::vector<std::uint32_t> cbvs{0b0011, 0b1100, 0b0011};
    auto picks = selectByCoverage(cbvs, 2);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 0u);
    EXPECT_EQ(picks[1], 1u);
}

TEST(Cbv, GreedyIsMarginalGainDriven)
{
    // First pick the 3-word cover, then the candidate contributing
    // the most *new* words even though its absolute count is lower.
    std::vector<std::uint32_t> cbvs{
        0b0000111, // 3 words
        0b0000110, // 2 words, subset of first
        0b1110000, // 3 new words
    };
    auto picks = selectByCoverage(cbvs, 2);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 0u);
    EXPECT_EQ(picks[1], 2u);
}
