/**
 * @file
 * §IV-C non-inclusive extension tests: home evictions detach CABLE
 * metadata without back-invalidating the remote copy; write-backs
 * fall back to non-dictionary compression; dirty evictions of lines
 * the home no longer holds re-allocate at the home agent.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/rng.h"
#include "core/channel.h"
#include "workload/value_model.h"

using namespace cable;

namespace
{

struct Rig
{
    Cache home;
    Cache remote;
    CableChannel channel;

    explicit Rig(std::uint64_t home_bytes = 64u << 10,
                 std::uint64_t remote_bytes = 64u << 10)
        : home({"home", home_bytes, 8}),
          remote({"remote", remote_bytes, 8}),
          channel(home, remote,
                  [] {
                      CableConfig c;
                      c.inclusive = false;
                      return c;
                  }())
    {
    }

    void
    fetch(SyntheticMemory &mem, Addr addr, bool store = false)
    {
        if (remote.access(addr)) {
            if (store && !remote.entryAt(remote.find(addr)).dirty())
                channel.remoteUpgrade(addr);
            return;
        }
        // Non-inclusive ordering: vacate the victim first — its
        // write-back may itself allocate at the home — and only then
        // ensure the requested line is home-resident.
        std::uint8_t vway = remote.victimWay(addr);
        (void)channel.remoteEvictSlot(LineID(remote.setOf(addr), vway));
        if (!home.probe(addr))
            (void)channel.homeInstall(addr, mem.lineAt(addr));
        (void)channel.respondAndInstall(addr, vway, store);
    }
};

ValueProfile
values()
{
    ValueProfile v;
    v.template_count = 16;
    v.mutation_rate = 0.05;
    return v;
}

} // namespace

TEST(NonInclusive, HomeEvictionKeepsRemoteCopy)
{
    // Home as small as the remote: home evictions displace lines the
    // remote still caches; non-inclusive mode must keep them there.
    Rig rig;
    SyntheticMemory mem(values(), 0, 1);
    Rng rng(2);
    for (int i = 0; i < 6000; ++i)
        rig.fetch(mem, rng.below(4096) * kLineBytes);

    EXPECT_GT(rig.channel.stats().get("noninclusive_detaches"), 0u);
    EXPECT_EQ(rig.channel.stats().get("back_invalidations"), 0u);
    // At least one remote-resident line is absent from the home.
    unsigned orphans = 0;
    for (std::uint32_t set = 0; set < rig.remote.numSets(); ++set)
        for (unsigned w = 0; w < rig.remote.numWays(); ++w) {
            const Cache::Entry &e = rig.remote.entryAt(
                LineID(set, static_cast<std::uint8_t>(w)));
            if (e.valid() && !rig.home.probe(e.tag << kLineShift))
                ++orphans;
        }
    EXPECT_GT(orphans, 0u);
}

TEST(NonInclusive, LongRandomRunStaysConsistent)
{
    // The built-in round-trip verification covers every transfer;
    // surviving a store-heavy run with constant home evictions is
    // the correctness statement.
    Rig rig;
    SyntheticMemory mem(values(), 0, 3);
    Rng rng(4);
    for (int i = 0; i < 10000; ++i)
        rig.fetch(mem, rng.below(4096) * kLineBytes,
                  rng.chance(0.3));
    EXPECT_GE(rig.channel.compressionRatio(), 1.0);
}

TEST(NonInclusive, WritebacksAvoidDictionary)
{
    Rig rig;
    SyntheticMemory mem(values(), 0, 5);
    rig.fetch(mem, 0x1000);
    rig.channel.remoteUpgrade(0x1000);
    CacheLine d = mem.lineAt(0x1000);
    d.setWord(2, 0xabcd);
    rig.remote.writeLine(0x1000, d, true);
    auto wb = rig.channel.remoteEvictSlot(rig.remote.find(0x1000));
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->nrefs, 0u); // non-dictionary fallback (§IV-C)
}

TEST(NonInclusive, DirtyEvictionOfOrphanReallocatesAtHome)
{
    Rig rig;
    SyntheticMemory mem(values(), 0, 6);
    Rng rng(7);

    // Dirty a line, then thrash the home until it loses the line.
    rig.fetch(mem, 0, /*store=*/false);
    rig.channel.remoteUpgrade(0);
    CacheLine d = mem.lineAt(0);
    d.setWord(0, 0x1234);
    rig.remote.writeLine(0, d, true);
    int guard = 0;
    while (rig.home.probe(0) && guard++ < 20000) {
        Addr a = (rng.below(4096) + 1) * kLineBytes;
        if (!rig.home.probe(a))
            (void)rig.channel.homeInstall(a, mem.lineAt(a));
    }
    ASSERT_FALSE(rig.home.probe(0));
    ASSERT_TRUE(rig.remote.probe(0));

    // The write-back must re-allocate the line at the home agent.
    auto wb = rig.channel.remoteEvictSlot(rig.remote.find(0));
    ASSERT_TRUE(wb.has_value());
    ASSERT_TRUE(rig.home.probe(0));
    EXPECT_EQ(rig.home.entryAt(rig.home.find(0)).data, d);
    EXPECT_TRUE(rig.home.entryAt(rig.home.find(0)).dirty());
}

TEST(NonInclusive, ResponsesStillUseReferences)
{
    // Opportunistic sharing still works while both caches hold the
    // tracked lines.
    Rig rig(256u << 10, 64u << 10); // roomy home
    SyntheticMemory mem(values(), 0, 8);
    unsigned with_refs = 0;
    for (unsigned i = 0; i < 512; ++i) {
        rig.fetch(mem, i * kLineBytes);
        // re-fetch misses only; count refs via stats below
    }
    with_refs = static_cast<unsigned>(
        rig.channel.stats().get("refs_1")
        + rig.channel.stats().get("refs_2")
        + rig.channel.stats().get("refs_3"));
    EXPECT_GT(with_refs, 10u);
}
