// Fixture: public non-const value-returning member functions must be
// [[nodiscard]] (or justified); void returns, const accessors,
// constructors, operators, statics and private members are exempt.

#ifndef FIXTURE_R004_H
#define FIXTURE_R004_H

#include <cstdint>

class Channel
{
  public:
    Channel();
    ~Channel();

    unsigned install(std::uint64_t addr);      // expect: R004

    bool
    fetch(std::uint64_t addr)                  // expect: R004
    {
        return addr != 0;
    }

    [[nodiscard]] unsigned annotated(std::uint64_t addr);

    [[nodiscard]] std::uint64_t
    multiLineAnnotated(std::uint64_t addr, bool store,
                       unsigned way);

    // cable-lint: allow(R004) re-link count is advisory; callers
    // that only need the side effect may drop it
    unsigned resynchronize();

    void reset();                        // void: exempt
    unsigned size() const { return n_; } // const: exempt
    static unsigned version();           // static: exempt
    Channel &operator=(const Channel &); // operator: exempt

  private:
    unsigned hiddenMutator(); // private: exempt
    unsigned n_ = 0;
};

struct PodLike
{
    std::uint64_t tag = 0; // data member: exempt

    std::uint64_t grab();                      // expect: R004
};

#endif
