// Fixture: a file exercising the patterns the linter must accept —
// zero findings expected anywhere.

#include <cstdint>
#include <vector>

inline constexpr unsigned kHeaderBits = 3;

struct BitWriter
{
    void put(unsigned long long value, unsigned nbits);
};

struct Scratch
{
    std::vector<std::uint32_t> sigs;
};

// cable-lint: no-alloc
void
extractInto(Scratch &s, std::uint32_t word)
{
    s.sigs.clear();
    if (word)
        s.sigs.push_back(word);
}

void
emit(BitWriter &bw, unsigned header)
{
    bw.put(header, kHeaderBits);
}

class Counter
{
  public:
    [[nodiscard]] std::uint64_t bump() { return ++n_; }
    void clear() { n_ = 0; }
    std::uint64_t value() const { return n_; }

  private:
    std::uint64_t n_ = 0;
};
