// Fixture: BitWriter::put() widths written as bare integer literals
// must trip R003; named constants, expressions, and justified
// allowances must not.

struct BitWriter
{
    void put(unsigned long long value, unsigned nbits);
};

inline constexpr unsigned kFlagBits = 1;
inline constexpr unsigned kNRefsBits = 2;

void
packageTransfer(BitWriter &bw, unsigned nrefs, unsigned rlid_bits)
{
    bw.put(1, kFlagBits);          // named width: clean
    bw.put(nrefs, kNRefsBits);     // named width: clean
    bw.put(nrefs, rlid_bits - 1);  // expression width: clean

    bw.put(0, 1);                  // expect: R003
    bw.put(nrefs, 2);              // expect: R003
    bw.put(0xdead, 16);            // expect: R003
    // A multi-line call anchors the finding to the .put( line:
    bw.put(nrefs,                  // expect: R003
           17);
}

void
justified(BitWriter &bw)
{
    // cable-lint: allow(R003) CRC trailer width is engine-local
    bw.put(0, 8);
}
