// Fixture: every direct-allocation construct inside a no-alloc
// function must trip R001; capacity-reusing scratch operations and
// justified allowances must not.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

struct Scratch
{
    std::vector<int> hits;
};

// cable-lint: no-alloc
void
searchPipeline(Scratch &s)
{
    s.hits.clear();       // allowed: capacity retained
    s.hits.push_back(1);  // allowed: capacity retained
    s.hits.assign(3, 0);  // allowed: capacity retained

    int *p = new int(4);                       // expect: R001
    delete p;
    void *q = std::malloc(16);                 // expect: R001
    std::free(q);
    auto u = std::make_unique<int>(5);         // expect: R001
    std::string label = std::to_string(*u);    // expect: R001
    std::vector<int> local;                    // expect: R001
    local.reserve(8);                          // expect: R001
    s.hits.resize(2);                          // expect: R001

    // cable-lint: allow(R001) shrink-only resize; capacity kept
    s.hits.resize(1);
    (void)label;
}

// Unmarked functions may allocate freely.
std::vector<int>
unmarked()
{
    std::vector<int> v(64);
    return v;
}
