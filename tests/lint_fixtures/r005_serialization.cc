// Fixture: serialization code in the checkpoint/resync family must
// name every wire width and never serialize through raw memory
// images. R005 fires on bare literal widths in put()/get() calls
// and on memcpy/memmove/reinterpret_cast; a justified allowance
// suppresses it. (The put()/get() literals also trip R003 in
// self-test mode, where directory scoping is disabled.)

#include <cstdint>
#include <cstring>

inline constexpr unsigned kMagicBits = 32;
inline constexpr unsigned kCountBits = 48;

struct BitWriter
{
    void put(unsigned long long value, unsigned nbits);
};

struct BitReader
{
    unsigned long long get(unsigned nbits);
};

struct Header
{
    std::uint32_t magic;
    std::uint32_t body_bits;
};

void
writeHeader(BitWriter &bw, const Header &h)
{
    bw.put(h.magic, kMagicBits);  // allowed: named width
    bw.put(h.body_bits, 32);      // expect: R003 // expect: R005
}

void
readHeader(BitReader &br, Header &h)
{
    h.magic = static_cast<std::uint32_t>(br.get(kMagicBits));
    h.body_bits = static_cast<std::uint32_t>(br.get(32));  // expect: R005 // expect: R003
}

unsigned long long
readCount(BitReader &br, unsigned nbits)
{
    return br.get(nbits);  // allowed: width flows from a named source
}

void
rawImage(const Header &h, unsigned char *out)
{
    std::memcpy(out, &h, sizeof(h));  // expect: R005
    std::memmove(out + 8, out, 8);    // expect: R005
    const std::uint32_t *w =
        reinterpret_cast<const std::uint32_t *>(out);  // expect: R005
    (void)w;
}

void
copyPayload(unsigned char *dst, const unsigned char *payload)
{
    // cable-lint: allow(R005) byte-granular copy of a trivially-
    // copyable line payload; no structure layout crosses the wire.
    std::memcpy(dst, payload, 64);
}
