// Fixture: read-side wire widths. Bare literal widths in
// BitReader::get() calls must trip R003 exactly like put() call
// sites; named constants, zero-argument smart-pointer get(), and
// name-keyed accessors taking a string must not.

#include <cstdint>
#include <memory>

struct BitReader
{
    std::uint64_t get(unsigned nbits);
    std::uint64_t get(unsigned nbits, const char *what);
};

struct StatSet
{
    std::uint64_t get(const char *name) const;
};

inline constexpr unsigned kHdrBits = 24;

inline std::uint64_t
decode(BitReader &br, const StatSet &stats,
       const std::shared_ptr<int> &owner)
{
    std::uint64_t acc = 0;
    acc += br.get(16);                       // expect: R003
    acc += br.get(8, "section tag");         // expect: R003
    acc += br.get(kHdrBits);                 // named: clean
    acc += br.get(kHdrBits, "HDR");          // named + tag: clean
    acc += stats.get("transfers");           // name-keyed: clean
    acc += owner.get() != nullptr ? 1u : 0u; // smart pointer: clean
    // cable-lint: allow(R003) engine-local scratch width, not wire
    acc += br.get(12);
    return acc;
}
