// Fixture: nondeterminism sources must trip R002 unless justified;
// include lines never count.

#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

unsigned
entropySoup()
{
    std::srand(42);                            // expect: R002
    unsigned r = static_cast<unsigned>(std::rand()); // expect: R002
    r ^= static_cast<unsigned>(std::time(nullptr));  // expect: R002
    std::random_device rd;                     // expect: R002
    return r + rd();
}

struct Directory
{
    std::unordered_map<int, int> order_leaks;  // expect: R002

    // cable-lint: allow(R002) point lookups only; the container is
    // never iterated, so traversal order cannot reach any output
    std::unordered_map<int, int> justified;
};

// Identifiers merely containing the banned substrings must not trip.
int
decoys(int operand, int timeout)
{
    int random_seed_label = operand + timeout; // named variable, no call
    return random_seed_label;
}
