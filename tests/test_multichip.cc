/**
 * @file
 * MultiChipSystem tests (§V-B): page interleaving, per-link CABLE
 * endpoints, coherence-traffic accounting, and node-count sweeps.
 * As everywhere, CABLE self-verifies every transfer.
 */

#include <gtest/gtest.h>

#include "sim/multichip.h"

using namespace cable;

namespace
{

MultiChipConfig
smallCfg(const std::string &scheme, unsigned nodes = 4)
{
    MultiChipConfig cfg;
    cfg.scheme = scheme;
    cfg.nodes = nodes;
    cfg.l1_bytes = 4 << 10;
    cfg.l2_bytes = 16 << 10;
    cfg.llc_bytes = 128 << 10;
    // Coherence-link sizing: quarter-sized hash tables (§VI-A).
    cfg.cable.home_ht_factor = 0.25;
    cfg.cable.remote_ht_factor = 0.25;
    return cfg;
}

} // namespace

TEST(MultiChip, PageInterleaving)
{
    MultiChipSystem sys(smallCfg("cable"),
                        benchmarkProfile("gcc"));
    EXPECT_EQ(sys.nodeOf(0), 0u);
    EXPECT_EQ(sys.nodeOf(4096), 1u);
    EXPECT_EQ(sys.nodeOf(3 * 4096), 3u);
    EXPECT_EQ(sys.nodeOf(4 * 4096), 0u);
    EXPECT_EQ(sys.nodeOf(4095), 0u);
}

TEST(MultiChip, RunsCleanWithCable)
{
    MultiChipSystem sys(smallCfg("cable"),
                        benchmarkProfile("gcc"));
    sys.run(30000);
    StatSet s = sys.linkStats();
    EXPECT_GT(s.get("transfers"), 0u);
    EXPECT_GT(sys.bitRatio(), 1.0);
    EXPECT_LE(sys.effectiveRatio(), 32.0);
}

TEST(MultiChip, AllSchemesRun)
{
    for (const std::string scheme :
         {"raw", "cpack", "lbe256", "gzip", "cable"}) {
        MultiChipSystem sys(smallCfg(scheme),
                            benchmarkProfile("milc"));
        sys.run(15000);
        if (scheme == "raw")
            EXPECT_DOUBLE_EQ(sys.bitRatio(), 1.0);
        else
            EXPECT_GE(sys.bitRatio(), 1.0) << scheme;
    }
}

TEST(MultiChip, TrafficSpreadsAcrossLinks)
{
    MultiChipSystem sys(smallCfg("cable"),
                        benchmarkProfile("soplex"));
    sys.run(30000);
    // Round-robin pages: each of the three remote-home channels
    // should carry a comparable share.
    std::uint64_t totals[4] = {0, 0, 0, 0};
    for (unsigned k = 1; k < 4; ++k)
        totals[k] = sys.channel(k).stats().get("transfers");
    for (unsigned k = 1; k < 4; ++k) {
        EXPECT_GT(totals[k], 0u);
        for (unsigned j = k + 1; j < 4; ++j) {
            double r = static_cast<double>(totals[k])
                       / static_cast<double>(totals[j]);
            EXPECT_GT(r, 0.5);
            EXPECT_LT(r, 2.0);
        }
    }
}

TEST(MultiChip, NodeCountSweepRuns)
{
    // Fig: NUMA count 2..8 leaves ratios largely unaffected (§VI-E).
    double ratios[3];
    int i = 0;
    for (unsigned nodes : {2u, 4u, 8u}) {
        MultiChipSystem sys(smallCfg("cable", nodes),
                            benchmarkProfile("gcc"));
        sys.run(20000);
        ratios[i++] = sys.bitRatio();
    }
    for (int k = 0; k < 3; ++k)
        EXPECT_GT(ratios[k], 1.0);
    // Within a modest band of each other.
    EXPECT_LT(ratios[0] / ratios[2], 2.0);
    EXPECT_GT(ratios[0] / ratios[2], 0.5);
}

TEST(MultiChip, CableBeatsCpackOnCoherenceLinks)
{
    WorkloadProfile prof = benchmarkProfile("dealII");
    prof.access.hot_frac = 0.3;
    prof.access.ws_lines = 64 << 10;
    prof.value.template_count = 256;
    MultiChipConfig cc = smallCfg("cable");
    cc.llc_bytes = 512 << 10;
    MultiChipConfig pc = smallCfg("cpack");
    pc.llc_bytes = 512 << 10;
    MultiChipSystem cable(cc, prof);
    MultiChipSystem cpack(pc, prof);
    cable.run(40000);
    cpack.run(40000);
    EXPECT_GT(cable.bitRatio(), cpack.bitRatio());
}

TEST(MultiChip, WritebacksTravelCompressed)
{
    MultiChipConfig cfg = smallCfg("cable");
    WorkloadProfile prof = benchmarkProfile("lbm"); // store-heavy
    MultiChipSystem sys(cfg, prof);
    sys.run(30000);
    StatSet s = sys.linkStats();
    EXPECT_GT(s.get("wb_transfers"), 0u);
    EXPECT_GT(s.get("wb_raw_bits"), s.get("wb_wire_bits"));
}

TEST(MultiChipDeath, NeedsTwoNodes)
{
    MultiChipConfig cfg = smallCfg("cable", 1);
    EXPECT_EXIT(MultiChipSystem(cfg, benchmarkProfile("gcc")),
                ::testing::ExitedWithCode(1), "at least 2 nodes");
}
