/**
 * @file
 * NumaSystem tests: the multi-threaded, directory-coherent NUMA
 * extension. Threads on every node share one page-interleaved
 * address space, so lines are actively shared and invalidated
 * across chips; CABLE's per-transfer verification checks the whole
 * protocol, and these tests check the directory behaviour and the
 * compression outcome on top.
 */

#include <gtest/gtest.h>

#include "sim/numa.h"

using namespace cable;

namespace
{

NumaConfig
smallCfg(const std::string &scheme, unsigned nodes = 4)
{
    NumaConfig cfg;
    cfg.scheme = scheme;
    cfg.nodes = nodes;
    cfg.l1_bytes = 4 << 10;
    cfg.l2_bytes = 16 << 10;
    cfg.llc_bytes = 128 << 10;
    cfg.cable.home_ht_factor = 0.25;
    cfg.cable.remote_ht_factor = 0.25;
    return cfg;
}

WorkloadProfile
sharedProfile()
{
    WorkloadProfile p = benchmarkProfile("gcc");
    // Heavier cold traffic over a modest set so threads overlap.
    p.access.ws_lines = 32 << 10;
    p.access.hot_frac = 0.6;
    p.access.store_frac = 0.2;
    return p;
}

} // namespace

TEST(Numa, RunsCleanWithCable)
{
    NumaSystem sys(smallCfg("cable"), sharedProfile());
    sys.run(8000); // 8000 ops x 4 threads, verified per transfer
    EXPECT_GT(sys.linkStats().get("transfers"), 0u);
    EXPECT_GT(sys.bitRatio(), 1.0);
}

TEST(Numa, LinesAreActivelyShared)
{
    NumaSystem sys(smallCfg("cable"), sharedProfile());
    sys.run(8000);
    EXPECT_GT(sys.activelySharedLines(), 0u);
}

TEST(Numa, StoresTriggerCrossNodeInvalidations)
{
    NumaSystem sys(smallCfg("cable"), sharedProfile());
    sys.run(8000);
    EXPECT_GT(sys.invalidations(), 0u);
}

TEST(Numa, AllSchemesSurviveSharing)
{
    for (const std::string scheme : {"raw", "cpack", "gzip",
                                     "cable"}) {
        NumaSystem sys(smallCfg(scheme), sharedProfile());
        sys.run(4000);
        if (scheme == "raw")
            EXPECT_DOUBLE_EQ(sys.bitRatio(), 1.0);
        else
            EXPECT_GE(sys.bitRatio(), 1.0) << scheme;
    }
}

TEST(Numa, EveryDirectedChannelCarriesTraffic)
{
    NumaSystem sys(smallCfg("cable"), sharedProfile());
    sys.run(8000);
    unsigned active = 0;
    for (unsigned k = 0; k < 4; ++k)
        for (unsigned j = 0; j < 4; ++j)
            if (k != j
                && sys.channel(k, j).stats().get("transfers") > 0)
                ++active;
    EXPECT_EQ(active, 12u); // N(N-1) directed channels all used
}

TEST(Numa, TwoAndEightNodes)
{
    for (unsigned nodes : {2u, 8u}) {
        NumaSystem sys(smallCfg("cable", nodes), sharedProfile());
        sys.run(3000);
        EXPECT_GT(sys.bitRatio(), 1.0) << nodes;
    }
}

TEST(Numa, StoreHeavySharingStressStaysConsistent)
{
    WorkloadProfile p = sharedProfile();
    p.access.store_frac = 0.5;
    p.access.ws_lines = 8 << 10; // intense overlap
    NumaSystem sys(smallCfg("cable"), p);
    sys.run(12000);
    EXPECT_GT(sys.invalidations(), 100u);
    SUCCEED(); // no verification panic across heavy invalidation
}

TEST(NumaDeath, BadNodeCount)
{
    EXPECT_EXIT(NumaSystem(smallCfg("cable", 1), sharedProfile()),
                ::testing::ExitedWithCode(1), "nodes");
}
