/**
 * @file
 * Regression tests for behaviours layered on the baseline design:
 * LBE's byte-run token and self-window matching, ORACLE's
 * best-of-two selector and overlapped copies, the throughput
 * harness's measurement window, per-program link attribution, and
 * the on/off controller's latency accounting.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lbe.h"
#include "compress/oracle.h"
#include "sim/memlink.h"
#include "sim/throughput.h"

using namespace cable;

TEST(LbeExt, ByteRunEncodesSmallInts)
{
    Lbe lbe;
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, 0x10 + w); // distinct small ints
    BitVec enc = lbe.compress(l, {});
    // One byte-run token: 2 + 4 + 16*8 = 134 bits, far below
    // literal runs (16*32 + overhead).
    EXPECT_EQ(enc.sizeBits(), 2u + 4u + 16u * 8u);
    EXPECT_EQ(lbe.decompress(enc, {}), l);
}

TEST(LbeExt, SelfWindowCatchesIntraLineRepeats)
{
    Lbe lbe;
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, w < 4 ? 0xdead0000 + w : l.word(w - 4));
    BitVec enc = lbe.compress(l, {});
    // 4 literal words then copies out of the line's own prefix.
    EXPECT_LT(enc.sizeBits(), 4 * 34u + 3 * 16u);
    EXPECT_EQ(lbe.decompress(enc, {}), l);
}

TEST(LbeExt, MixedRunsRoundTrip)
{
    Lbe lbe;
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            double roll = rng.uniform();
            if (roll < 0.3)
                l.setWord(w, 0);
            else if (roll < 0.6)
                l.setWord(w, static_cast<std::uint32_t>(
                                 rng.below(256)));
            else
                l.setWord(w, static_cast<std::uint32_t>(rng.next()));
        }
        BitVec enc = lbe.compress(l, {});
        ASSERT_EQ(lbe.decompress(enc, {}), l);
    }
}

TEST(OracleExt, NeverWorseThanLbe)
{
    Oracle o;
    Lbe lbe;
    Rng rng(7);
    for (int i = 0; i < 40; ++i) {
        CacheLine ref;
        for (unsigned w = 0; w < kWordsPerLine; ++w)
            ref.setWord(w, rng.chance(0.4)
                               ? 0
                               : static_cast<std::uint32_t>(
                                     rng.next()));
        CacheLine t = ref;
        t.setWord(static_cast<unsigned>(rng.below(16)),
                  static_cast<std::uint32_t>(rng.next()));
        RefList refs{&ref};
        EXPECT_LE(o.compress(t, refs).sizeBits(),
                  lbe.compress(t, refs).sizeBits() + 1)
            << "iteration " << i;
        ASSERT_EQ(o.decompress(o.compress(t, refs), refs), t);
    }
}

TEST(OracleExt, OverlappedCopiesCompressRuns)
{
    Oracle o;
    CacheLine l = CacheLine::filledWords(0xabababab);
    BitVec enc = o.compress(l, {});
    // One literal byte + one overlapped copy (plus selector).
    EXPECT_LE(enc.sizeBits(), 40u);
    EXPECT_EQ(o.decompress(enc, {}), l);

    CacheLine zero;
    BitVec zenc = o.compress(zero, {});
    EXPECT_LE(zenc.sizeBits(), 16u); // LBE zero-run wins via selector
    EXPECT_EQ(o.decompress(zenc, {}), zero);
}

TEST(MeasurementWindow, ExcludesWarmup)
{
    MemSystemConfig cfg;
    cfg.scheme = "raw";
    cfg.timing = true;
    cfg.l1_bytes = 4 << 10;
    cfg.l2_bytes = 16 << 10;
    cfg.llc_bytes_per_thread = 128 << 10;
    cfg.l4_bytes_per_thread = 512 << 10;
    MemLinkSystem sys(cfg, {benchmarkProfile("povray")});
    sys.run(5000); // warm-up (compulsory misses)
    double cold_ipc = sys.aggregateIPC();
    sys.beginMeasurement();
    sys.run(5000); // measured window, hot set resident
    double warm_ipc = sys.aggregateIPC();
    EXPECT_GT(warm_ipc, cold_ipc);
    EXPECT_TRUE(sys.allThreadsReached(5000));
    EXPECT_FALSE(sys.allThreadsReached(5001));
}

TEST(ThreadAttribution, SplitsLinkBitsByOwner)
{
    MemSystemConfig cfg;
    cfg.scheme = "cable";
    cfg.timing = false;
    cfg.l1_bytes = 4 << 10;
    cfg.l2_bytes = 16 << 10;
    cfg.llc_bytes_per_thread = 128 << 10;
    cfg.l4_bytes_per_thread = 512 << 10;
    // An easily-compressed program next to a hard one: per-thread
    // ratios must differ strongly in the same shared system.
    std::vector<WorkloadProfile> progs{benchmarkProfile("mcf"),
                                       benchmarkProfile("namd")};
    MemLinkSystem sys(cfg, progs);
    sys.run(30000);
    EXPECT_GT(sys.threadBitRatio(0), 2.0 * sys.threadBitRatio(1));
}

TEST(OnOffLatency, DisabledCompressionCostsNoCycles)
{
    // With the controller forcing compression off for the whole run
    // (idle link), CABLE's runtime approaches the raw baseline.
    MemSystemConfig base;
    base.scheme = "raw";
    base.timing = true;
    base.l1_bytes = 4 << 10;
    base.l2_bytes = 16 << 10;
    base.llc_bytes_per_thread = 128 << 10;
    base.l4_bytes_per_thread = 512 << 10;
    MemLinkSystem raw(base, {benchmarkProfile("tonto")});
    raw.run(40000);

    MemSystemConfig ctl = base;
    ctl.scheme = "cable";
    ctl.onoff_control = true;
    ctl.onoff_period = 20000;
    MemLinkSystem cable_ctl(ctl, {benchmarkProfile("tonto")});
    cable_ctl.run(40000);

    MemSystemConfig always = base;
    always.scheme = "cable";
    MemLinkSystem cable(always, {benchmarkProfile("tonto")});
    cable.run(40000);

    EXPECT_LT(cable_ctl.maxTime(), cable.maxTime());
    double over_raw = static_cast<double>(cable_ctl.maxTime())
                      / static_cast<double>(raw.maxTime());
    EXPECT_LT(over_raw, 1.05);
}

TEST(HashTableSizing, FullSizedMeansSlotsEqualLines)
{
    // A full-sized table with 2-deep buckets has lines/2 buckets.
    Cache home({"h", 1u << 20, 8});
    Cache remote({"r", 256u << 10, 8});
    CableConfig cfg;
    cfg.home_ht_factor = 1.0;
    cfg.ht_bucket = 2;
    CableChannel ch(home, remote, cfg);
    EXPECT_EQ(ch.homeTable().numEntries() * ch.homeTable().bucketWays(),
              home.numLines());
}
