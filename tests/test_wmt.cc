/**
 * @file
 * Way-Map Table tests (§III-D): normalization round-trips, remote-
 * way lookup (Fig 9), occupancy maintenance, and the Table III entry
 * width for the paper's off-chip configuration.
 */

#include <gtest/gtest.h>

#include "core/wmt.h"

using namespace cable;

namespace
{

WayMapTable::Config
paperOffChip()
{
    // 8-way 8MB remote (LLC), 8-way 16MB home (DRAM buffer).
    WayMapTable::Config c;
    c.remote_sets = (8u << 20) / 64 / 8; // 16384
    c.remote_ways = 8;
    c.home_sets = (16u << 20) / 64 / 8; // 32768
    c.home_ways = 8;
    return c;
}

} // namespace

TEST(Wmt, PaperEntryWidthIsFourBits)
{
    WayMapTable wmt(paperOffChip());
    // 1 alias bit + 3 home-way bits (Table III).
    EXPECT_EQ(wmt.entryBits(), 4u);
}

TEST(Wmt, NormalizeDenormalizeRoundTrip)
{
    WayMapTable wmt(paperOffChip());
    for (std::uint32_t hset : {0u, 1u, 16384u, 32767u}) {
        for (std::uint8_t way : {std::uint8_t{0}, std::uint8_t{3},
                                 std::uint8_t{7}}) {
            LineID hlid(hset, way);
            std::uint32_t remote_set = hset & (16384 - 1);
            std::uint32_t norm = wmt.normalize(hlid);
            EXPECT_EQ(wmt.denormalize(remote_set, norm), hlid);
        }
    }
}

TEST(Wmt, LookupFindsRemoteWay)
{
    WayMapTable wmt(paperOffChip());
    LineID hlid(20000, 5);
    std::uint32_t rset = 20000 & (16384 - 1);
    wmt.set(rset, 2, hlid);
    auto way = wmt.lookupRemoteWay(rset, hlid);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 2);
}

TEST(Wmt, LookupMissWhenNotTracked)
{
    WayMapTable wmt(paperOffChip());
    EXPECT_FALSE(wmt.lookupRemoteWay(5, LineID(5, 0)).has_value());
}

TEST(Wmt, AliasDistinguishesHomeSets)
{
    WayMapTable wmt(paperOffChip());
    // Two home sets sharing the same remote set (aliases 0 and 1).
    LineID a(100, 3), b(100 + 16384, 3);
    wmt.set(100, 0, a);
    EXPECT_TRUE(wmt.lookupRemoteWay(100, a).has_value());
    EXPECT_FALSE(wmt.lookupRemoteWay(100, b).has_value());
}

TEST(Wmt, OccupantReadback)
{
    WayMapTable wmt(paperOffChip());
    LineID hlid(777, 1);
    std::uint32_t rset = 777;
    wmt.set(rset, 4, hlid);
    auto occ = wmt.occupantHomeLID(rset, 4);
    ASSERT_TRUE(occ.has_value());
    EXPECT_EQ(*occ, hlid);
    EXPECT_FALSE(wmt.occupantHomeLID(rset, 5).has_value());
}

TEST(Wmt, ClearSlot)
{
    WayMapTable wmt(paperOffChip());
    LineID hlid(777, 1);
    wmt.set(777, 4, hlid);
    wmt.clear(777, 4);
    EXPECT_FALSE(wmt.occupant(777, 4).has_value());
    EXPECT_FALSE(wmt.lookupRemoteWay(777, hlid).has_value());
}

TEST(Wmt, ClearByHomeLid)
{
    WayMapTable wmt(paperOffChip());
    LineID hlid(888, 2);
    wmt.set(888, 1, hlid);
    wmt.set(888, 3, LineID(888, 5));
    wmt.clearByHomeLID(888, hlid);
    EXPECT_FALSE(wmt.lookupRemoteWay(888, hlid).has_value());
    EXPECT_TRUE(wmt.occupant(888, 3).has_value());
}

TEST(Wmt, OverwriteSlot)
{
    WayMapTable wmt(paperOffChip());
    wmt.set(9, 0, LineID(9, 1));
    wmt.set(9, 0, LineID(9 + 16384, 2));
    EXPECT_FALSE(wmt.lookupRemoteWay(9, LineID(9, 1)).has_value());
    auto way = wmt.lookupRemoteWay(9, LineID(9 + 16384, 2));
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 0);
}

TEST(Wmt, EqualSizedCachesHaveZeroAliasBits)
{
    WayMapTable::Config c;
    c.remote_sets = 2048;
    c.remote_ways = 8;
    c.home_sets = 2048;
    c.home_ways = 8;
    WayMapTable wmt(c);
    EXPECT_EQ(wmt.entryBits(), 3u); // way bits only
    LineID hlid(2000, 6);
    wmt.set(2000, 7, hlid);
    auto way = wmt.lookupRemoteWay(2000, hlid);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 7);
}

TEST(Wmt, StorageBitsMatchGeometry)
{
    WayMapTable wmt(paperOffChip());
    EXPECT_EQ(wmt.storageBits(), 16384ull * 8 * (4 + 1));
}

TEST(WmtDeath, HomeSmallerThanRemoteIsFatal)
{
    WayMapTable::Config c;
    c.remote_sets = 4096;
    c.remote_ways = 8;
    c.home_sets = 2048;
    c.home_ways = 8;
    EXPECT_EXIT(WayMapTable{c}, ::testing::ExitedWithCode(1),
                "at least as many sets");
}
