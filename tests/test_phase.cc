/**
 * @file
 * PhaseDetector tests: a stationary epoch stream stays one phase, an
 * injected regime shift is flagged on the epoch it lands, boundaries
 * and reports are bit-identical across reruns, the emitted phases
 * contiguously partition the epoch stream, and the warmup floor is
 * enforced.
 */

#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/stats.h"
#include "telemetry/phase.h"

using namespace cable;

namespace
{

/** One synthetic epoch delta with the counters the detector reads. */
StatSet
epochDelta(std::uint64_t searches, std::uint64_t hits,
           std::uint64_t raw_bits, std::uint64_t wire_bits,
           std::uint64_t coverage)
{
    StatSet s;
    s.add("searches", searches);
    s.add("ht_hits", hits);
    s.add("raw_bits", raw_bits);
    s.add("wire_bits", wire_bits);
    s.add("transfers", searches);
    s.hist("cbv_covered_words").record(coverage, searches);
    return s;
}

std::string
reportString(const PhaseDetector &d)
{
    std::ostringstream os;
    JsonWriter jw(os);
    d.writeReport(jw);
    return os.str();
}

TEST(PhaseDetector, FeatureVectorMatchesContract)
{
    StatSet s = epochDelta(1000, 500, 200000, 100000, 8);
    double f[kPhaseFeatureCount];
    PhaseDetector::features(s, f);
    EXPECT_DOUBLE_EQ(f[0], 0.5);      // hit_rate
    EXPECT_DOUBLE_EQ(f[1], 8.0);      // coverage
    EXPECT_DOUBLE_EQ(f[2], 2.0);      // ratio
    EXPECT_DOUBLE_EQ(f[3], 100000.0); // bandwidth
}

TEST(PhaseDetector, FeaturesGuardZeroDenominators)
{
    StatSet empty;
    double f[kPhaseFeatureCount];
    PhaseDetector::features(empty, f);
    for (unsigned i = 0; i < kPhaseFeatureCount; ++i)
        EXPECT_EQ(f[i], 0.0) << phaseFeatureName(i);
}

TEST(PhaseDetector, StationaryStreamIsOnePhase)
{
    PhaseDetector d;
    for (std::uint64_t e = 0; e < 20; ++e) {
        StatSet s = epochDelta(1000, 500, 200000, 100000, 8);
        EXPECT_FALSE(d.observe(s, (e + 1) * 1000));
    }
    d.finish();
    EXPECT_TRUE(d.boundaries().empty());
    ASSERT_EQ(d.phases().size(), 1u);
    const PhaseSummary &p = d.phases()[0];
    EXPECT_EQ(p.start_epoch, 0u);
    EXPECT_EQ(p.end_epoch, 20u);
    EXPECT_EQ(p.epochs, 20u);
    EXPECT_EQ(p.end_ops, 20000u);
    EXPECT_DOUBLE_EQ(p.ratioSpread(), 0.0);
}

TEST(PhaseDetector, DetectsInjectedShift)
{
    PhaseDetector d;
    std::uint64_t ops = 0;
    bool fired = false;
    for (std::uint64_t e = 0; e < 20; ++e) {
        // Hit rate jumps 0.5 -> 0.9 at epoch 10: z = 16 sigma under
        // the 5% floor, so the CUSUM must fire on that very epoch.
        std::uint64_t hits = e < 10 ? 500 : 900;
        ops += 1000;
        bool b = d.observe(epochDelta(1000, hits, 200000, 100000, 8),
                           ops);
        if (e == 10) {
            EXPECT_TRUE(b);
            fired = b;
        } else {
            EXPECT_FALSE(b) << "spurious boundary at epoch " << e;
        }
    }
    ASSERT_TRUE(fired);
    d.finish();
    ASSERT_EQ(d.boundaries().size(), 1u);
    EXPECT_EQ(d.boundaries()[0], 10u);
    ASSERT_EQ(d.phases().size(), 2u);
    // The triggering epoch belongs to the NEW phase.
    EXPECT_EQ(d.phases()[0].end_epoch, 10u);
    EXPECT_EQ(d.phases()[1].start_epoch, 10u);
    EXPECT_EQ(d.phases()[1].start_ops, 10000u);
    EXPECT_NEAR(d.phases()[0].featureMean(0), 0.5, 1e-12);
    EXPECT_NEAR(d.phases()[1].featureMean(0), 0.9, 1e-12);
}

TEST(PhaseDetector, PhasesPartitionEpochStream)
{
    PhaseDetector d;
    std::uint64_t ops = 0;
    for (std::uint64_t e = 0; e < 30; ++e) {
        // Three regimes: ratio 2.0, then 4.0, then 1.25.
        std::uint64_t raw = 200000;
        std::uint64_t wire =
            e < 10 ? 100000 : (e < 20 ? 50000 : 160000);
        ops += 1000;
        d.observe(epochDelta(1000, 500, raw, wire, 8), ops);
    }
    d.finish();
    ASSERT_EQ(d.phases().size(), d.boundaries().size() + 1);
    std::uint64_t expect_epoch = 0;
    std::uint64_t expect_ops = 0;
    std::uint64_t total_epochs = 0;
    for (std::size_t i = 0; i < d.phases().size(); ++i) {
        const PhaseSummary &p = d.phases()[i];
        EXPECT_EQ(p.index, i);
        EXPECT_EQ(p.start_epoch, expect_epoch);
        EXPECT_EQ(p.start_ops, expect_ops);
        EXPECT_EQ(p.end_epoch - p.start_epoch, p.epochs);
        if (i > 0) {
            EXPECT_EQ(p.start_epoch, d.boundaries()[i - 1]);
        }
        expect_epoch = p.end_epoch;
        expect_ops = p.end_ops;
        total_epochs += p.epochs;
    }
    EXPECT_EQ(expect_epoch, 30u);
    EXPECT_EQ(total_epochs, d.epochsSeen());
}

TEST(PhaseDetector, RatioSpreadTracksExtrema)
{
    PhaseDetector d;
    // Within one phase (warmup keeps the detector quiet for the
    // first 4 epochs), wobble the ratio between 2.0 and 2.2.
    d.observe(epochDelta(1000, 500, 200000, 100000, 8), 1000);
    d.observe(epochDelta(1000, 500, 220000, 100000, 8), 2000);
    d.observe(epochDelta(1000, 500, 210000, 100000, 8), 3000);
    d.finish();
    ASSERT_EQ(d.phases().size(), 1u);
    EXPECT_NEAR(d.phases()[0].ratioSpread(), 0.2, 1e-12);
}

TEST(PhaseDetector, DeterministicReports)
{
    auto run = [] {
        PhaseDetector d;
        std::uint64_t ops = 0;
        for (std::uint64_t e = 0; e < 25; ++e) {
            std::uint64_t hits = e < 12 ? 400 : 800;
            std::uint64_t cov = e < 12 ? 8 : 12;
            ops += 1000;
            d.observe(epochDelta(1000, hits, 200000, 100000, cov),
                      ops);
        }
        d.finish();
        return reportString(d);
    };
    EXPECT_EQ(run(), run());
}

TEST(PhaseDetector, WarmupFloorIsOne)
{
    PhaseConfig cfg;
    cfg.warmup = 0; // clamped to 1: a baseline needs one epoch
    PhaseDetector d(cfg);
    EXPECT_EQ(d.config().warmup, 1u);
    for (std::uint64_t e = 0; e < 5; ++e)
        d.observe(epochDelta(1000, 500, 200000, 100000, 8),
                  (e + 1) * 1000);
    d.finish();
    EXPECT_TRUE(d.boundaries().empty());
}

TEST(PhaseDetector, FinishIsIdempotentAndSkipsEmpty)
{
    PhaseDetector d;
    d.finish();
    d.finish();
    EXPECT_TRUE(d.phases().empty());
    EXPECT_EQ(d.epochsSeen(), 0u);
}

} // namespace
