/**
 * @file
 * MemLinkSystem integration tests: end-to-end runs of the single-
 * chip simulator under every scheme, determinism, timing sanity,
 * multiprogram sharing and the on/off controller. CABLE's built-in
 * round-trip verification runs throughout, so completing a run is
 * itself a correctness check.
 */

#include <gtest/gtest.h>

#include "sim/memlink.h"

using namespace cable;

namespace
{

MemSystemConfig
smallCfg(const std::string &scheme, bool timing = false)
{
    MemSystemConfig cfg;
    cfg.scheme = scheme;
    cfg.timing = timing;
    // Shrink the hierarchy so short runs exercise evictions.
    cfg.l1_bytes = 4 << 10;
    cfg.l2_bytes = 16 << 10;
    cfg.llc_bytes_per_thread = 128 << 10;
    cfg.l4_bytes_per_thread = 512 << 10;
    return cfg;
}

} // namespace

TEST(MemLink, AllSchemesRunClean)
{
    for (const std::string scheme :
         {"raw", "zero", "bdi", "cpack", "cpack128", "lbe256",
          "gzip", "cable"}) {
        MemLinkSystem sys(smallCfg(scheme),
                          {benchmarkProfile("gcc")});
        sys.run(20000);
        EXPECT_GE(sys.bitRatio(), scheme == "raw" ? 1.0 : 0.99)
            << scheme;
        EXPECT_GT(sys.link().stats().get("transfers"), 0u) << scheme;
    }
}

TEST(MemLink, RawRatioIsExactlyOne)
{
    MemLinkSystem sys(smallCfg("raw"), {benchmarkProfile("mcf")});
    sys.run(20000);
    EXPECT_DOUBLE_EQ(sys.bitRatio(), 1.0);
    EXPECT_DOUBLE_EQ(sys.effectiveRatio(), 1.0);
}

TEST(MemLink, CableBeatsCpackOnScatteredDuplicates)
{
    // A dealII-style workload scaled so a short run streams enough
    // near-duplicates through the LLC-sized dictionary.
    WorkloadProfile prof = benchmarkProfile("dealII");
    prof.access.hot_frac = 0.3;       // cold traffic dominates
    prof.access.ws_lines = 64 << 10;
    prof.value.template_count = 256;  // duplicates recur quickly
    MemSystemConfig cfg = smallCfg("cable");
    cfg.llc_bytes_per_thread = 512 << 10;
    cfg.l4_bytes_per_thread = 2u << 20;
    MemSystemConfig cfg2 = cfg;
    cfg2.scheme = "cpack";
    MemLinkSystem cable(cfg, {prof});
    MemLinkSystem cpack(cfg2, {prof});
    cable.run(40000);
    cpack.run(40000);
    EXPECT_GT(cable.bitRatio(), cpack.bitRatio());
}

TEST(MemLink, EffectiveRatioIsCappedAt32)
{
    MemLinkSystem sys(smallCfg("cable"),
                      {benchmarkProfile("libquantum")});
    sys.run(30000);
    EXPECT_LE(sys.effectiveRatio(), 32.0);
    EXPECT_GE(sys.effectiveRatio(), 1.0);
}

TEST(MemLink, DeterministicAcrossRuns)
{
    MemSystemConfig cfg = smallCfg("cable", true);
    MemLinkSystem a(cfg, {benchmarkProfile("gcc")});
    MemLinkSystem b(cfg, {benchmarkProfile("gcc")});
    a.run(15000);
    b.run(15000);
    EXPECT_EQ(a.maxTime(), b.maxTime());
    EXPECT_EQ(a.link().stats().get("flits"),
              b.link().stats().get("flits"));
    EXPECT_DOUBLE_EQ(a.bitRatio(), b.bitRatio());
}

TEST(MemLink, SeedChangesOutcome)
{
    MemSystemConfig c1 = smallCfg("cable", true);
    MemSystemConfig c2 = c1;
    c2.seed = 999;
    MemLinkSystem a(c1, {benchmarkProfile("gcc")});
    MemLinkSystem b(c2, {benchmarkProfile("gcc")});
    a.run(15000);
    b.run(15000);
    EXPECT_NE(a.maxTime(), b.maxTime());
}

TEST(MemLink, TimingAccountsCompressionLatency)
{
    // Single-threaded, uncontended link: gzip's 96-cycle latency
    // must cost more time than raw (Fig 17's effect).
    MemLinkSystem raw(smallCfg("raw", true),
                      {benchmarkProfile("omnetpp")});
    MemLinkSystem gz(smallCfg("gzip", true),
                     {benchmarkProfile("omnetpp")});
    raw.run(20000);
    gz.run(20000);
    EXPECT_GT(gz.maxTime(), raw.maxTime());
    // And the slowdown is bounded (not a simulation artifact).
    EXPECT_LT(static_cast<double>(gz.maxTime())
                  / static_cast<double>(raw.maxTime()),
              2.0);
}

TEST(MemLink, InstructionAccountingMatchesOps)
{
    MemLinkSystem sys(smallCfg("raw", true),
                      {benchmarkProfile("hmmer")});
    sys.run(10000);
    // mem_ratio 0.24 -> about 41K instructions for 10K ops.
    double ratio =
        10000.0 / static_cast<double>(sys.instructions(0));
    EXPECT_NEAR(ratio, benchmarkProfile("hmmer").access.mem_ratio,
                0.05);
}

TEST(MemLink, MultiprogramSharedLlc)
{
    MemSystemConfig cfg = smallCfg("cable");
    std::vector<WorkloadProfile> progs{
        benchmarkProfile("gcc"), benchmarkProfile("bzip2"),
        benchmarkProfile("hmmer"), benchmarkProfile("soplex")};
    MemLinkSystem sys(cfg, progs);
    EXPECT_EQ(sys.numThreads(), 4u);
    EXPECT_EQ(sys.llc().sizeBytes(), 4 * cfg.llc_bytes_per_thread);
    sys.run(8000);
    EXPECT_GT(sys.bitRatio(), 1.0);
}

TEST(MemLink, CooperativeCopiesShareValues)
{
    // Four copies of the same program with shared value seeds: the
    // CABLE dictionary sees cross-program duplicates (Fig 15).
    MemSystemConfig cfg = smallCfg("cable");
    cfg.shared_value_seed = true;
    std::vector<WorkloadProfile> progs(4, benchmarkProfile("gcc"));
    MemLinkSystem shared(cfg, progs);
    shared.run(8000);

    MemSystemConfig cfg2 = smallCfg("cable");
    cfg2.shared_value_seed = false;
    MemLinkSystem unrelated(cfg2, progs);
    unrelated.run(8000);

    EXPECT_GT(shared.bitRatio(), unrelated.bitRatio() * 0.95);
}

TEST(MemLink, OnOffControllerDisablesWhenIdle)
{
    // A compute-bound workload leaves the link idle; the controller
    // should turn compression off, pushing the ratio toward 1.
    MemSystemConfig ctl = smallCfg("cable", true);
    ctl.onoff_control = true;
    ctl.onoff_period = 50000;
    MemLinkSystem sys(ctl, {benchmarkProfile("povray")});
    sys.run(60000);

    MemSystemConfig no_ctl = smallCfg("cable", true);
    MemLinkSystem base(no_ctl, {benchmarkProfile("povray")});
    base.run(60000);

    EXPECT_LT(sys.bitRatio(), base.bitRatio() + 0.01);
    // Raw sends after the controller trips shed the compression
    // latency; allow sampling jitter.
    EXPECT_LE(sys.maxTime(),
              base.maxTime() + base.maxTime() / 100);
}

TEST(MemLink, EnergyBreakdownPopulated)
{
    MemLinkSystem sys(smallCfg("cable", true),
                      {benchmarkProfile("mcf")});
    sys.run(20000);
    auto b = sys.energy().breakdown(sys.maxTime());
    EXPECT_GT(b["link"], 0.0);
    EXPECT_GT(b["dram"], 0.0);
    EXPECT_GT(b["comp_engine"], 0.0);
    EXPECT_GT(b["comp_sram"], 0.0);
    EXPECT_GT(b["sram_static"], 0.0);
    EXPECT_GT(b["total"], b["link"]);
}

TEST(MemLink, CompressionReducesLinkEnergy)
{
    MemLinkSystem raw(smallCfg("raw", true),
                      {benchmarkProfile("mcf")});
    MemLinkSystem cable(smallCfg("cable", true),
                        {benchmarkProfile("mcf")});
    raw.run(20000);
    cable.run(20000);
    auto br = raw.energy().breakdown(raw.maxTime());
    auto bc = cable.energy().breakdown(cable.maxTime());
    EXPECT_LT(bc["link"], br["link"]);
}

TEST(MemLink, SharedLinkAcrossSystems)
{
    LinkModel shared({16, 9.6, 2.0, false, 40});
    MemSystemConfig cfg = smallCfg("cable", true);
    MemLinkSystem a(cfg, {benchmarkProfile("mcf")}, &shared);
    MemSystemConfig cfg2 = cfg;
    cfg2.seed = 5;
    MemLinkSystem b(cfg2, {benchmarkProfile("mcf")}, &shared);
    a.run(5000);
    b.run(5000);
    EXPECT_GT(shared.stats().get("transfers"), 0u);
}

TEST(MemLink, ToggleCountingRuns)
{
    MemSystemConfig cfg = smallCfg("cable");
    cfg.count_toggles = true;
    MemLinkSystem sys(cfg, {benchmarkProfile("gcc")});
    sys.run(10000);
    EXPECT_GT(sys.link().stats().get("toggles"), 0u);
}

TEST(MemLink, CableDecoupledFromReplacementPolicy)
{
    // §II-C: CABLE tracks evictions precisely, so compression holds
    // whatever the LLC replacement policy.
    double ratios[3];
    int i = 0;
    for (ReplacementPolicy pol :
         {ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
          ReplacementPolicy::Random}) {
        MemSystemConfig cfg = smallCfg("cable");
        cfg.llc_policy = pol;
        MemLinkSystem sys(cfg, {benchmarkProfile("gcc")});
        sys.run(30000);
        ratios[i++] = sys.bitRatio();
    }
    for (int k = 1; k < 3; ++k) {
        EXPECT_GT(ratios[k], ratios[0] * 0.8);
        EXPECT_LT(ratios[k], ratios[0] * 1.2);
    }
}
