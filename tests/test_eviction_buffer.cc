/**
 * @file
 * Eviction-buffer tests (§IV-A): sequence numbers, acknowledgement
 * retirement, capacity, and lookup of recently evicted lines —
 * including the double-eviction-of-one-slot case.
 */

#include <gtest/gtest.h>

#include "core/eviction_buffer.h"

using namespace cable;

TEST(EvictionBuffer, PushAssignsMonotonicSeq)
{
    EvictionBuffer buf(4);
    auto s1 = buf.push(LineID(1, 0), CacheLine::filledWords(1));
    auto s2 = buf.push(LineID(2, 0), CacheLine::filledWords(2));
    EXPECT_LT(s1, s2);
    EXPECT_EQ(buf.lastSeq(), s2);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(EvictionBuffer, FindReturnsData)
{
    EvictionBuffer buf(4);
    buf.push(LineID(3, 1), CacheLine::filledWords(0xaa));
    auto hit = buf.find(LineID(3, 1));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, CacheLine::filledWords(0xaa));
    EXPECT_FALSE(buf.find(LineID(9, 9)).has_value());
}

TEST(EvictionBuffer, AcknowledgeRetiresPrefix)
{
    EvictionBuffer buf(8);
    auto s1 = buf.push(LineID(1, 0), CacheLine{});
    buf.push(LineID(2, 0), CacheLine{});
    auto s3 = buf.push(LineID(3, 0), CacheLine{});
    buf.acknowledge(s1);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_FALSE(buf.find(LineID(1, 0)).has_value());
    buf.acknowledge(s3);
    EXPECT_EQ(buf.size(), 0u);
}

TEST(EvictionBuffer, CapacityDropsOldest)
{
    EvictionBuffer buf(2);
    buf.push(LineID(1, 0), CacheLine::filledWords(1));
    buf.push(LineID(2, 0), CacheLine::filledWords(2));
    buf.push(LineID(3, 0), CacheLine::filledWords(3));
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_FALSE(buf.find(LineID(1, 0)).has_value());
    EXPECT_TRUE(buf.find(LineID(3, 0)).has_value());
}

TEST(EvictionBuffer, SameSlotEvictedTwiceReturnsNewest)
{
    // A remote slot can be evicted, refilled and evicted again while
    // the first copy is still unacknowledged; lookups must see the
    // newest eviction.
    EvictionBuffer buf(4);
    buf.push(LineID(5, 2), CacheLine::filledWords(0x11));
    buf.push(LineID(5, 2), CacheLine::filledWords(0x22));
    auto hit = buf.find(LineID(5, 2));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, CacheLine::filledWords(0x22));
}

TEST(EvictionBuffer, AcknowledgeIsIdempotent)
{
    EvictionBuffer buf(4);
    auto s = buf.push(LineID(1, 0), CacheLine{});
    buf.acknowledge(s);
    buf.acknowledge(s);
    buf.acknowledge(s + 100);
    EXPECT_EQ(buf.size(), 0u);
}

TEST(EvictionBuffer, OutOfOrderRaceScenario)
{
    // §IV-A scenario: the home cache selected a reference while the
    // remote was evicting it. The response arrives referencing slot
    // (7,3); the cache slot now holds something else, but the buffer
    // still has the old data until the home acks the EvictSeq.
    EvictionBuffer buf(8);
    CacheLine old_ref = CacheLine::filledWords(0xdead);
    auto seq = buf.push(LineID(7, 3), old_ref);

    // Response in flight uses the buffered copy.
    auto hit = buf.find(LineID(7, 3));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, old_ref);

    // Home echoes the EvictSeq; now the entry may retire.
    buf.acknowledge(seq);
    EXPECT_FALSE(buf.find(LineID(7, 3)).has_value());
}
