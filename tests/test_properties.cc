/**
 * @file
 * Cross-cutting property tests: bounds that must hold for every
 * transfer and every engine regardless of data, and statistical
 * calibration checks on the synthetic workload suite.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/rng.h"
#include "compress/factory.h"
#include "core/channel.h"
#include "sim/memlink.h"
#include "workload/value_model.h"

using namespace cable;

TEST(Properties, WireNeverExceedsRawPlusFlag)
{
    // The raw fallback bounds every CABLE transfer at 513 bits.
    Cache home({"h", 512u << 10, 8});
    Cache remote({"r", 128u << 10, 8});
    CableChannel channel(home, remote, CableConfig{});
    ValueProfile v;
    v.random_line_frac = 0.6; // plenty of incompressible lines
    v.zero_line_frac = 0.1;
    SyntheticMemory mem(v, 0, 1);
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = rng.below(8192) * kLineBytes;
        if (remote.access(addr))
            continue;
        if (!home.probe(addr))
            (void)channel.homeInstall(addr, mem.lineAt(addr));
        FetchResult r = channel.remoteFetch(addr, rng.chance(0.25));
        ASSERT_LE(r.response.bits, kLineBytes * 8 + 1);
        if (r.victim_writeback) {
            ASSERT_LE(r.victim_writeback->bits,
                      kLineBytes * 8 + 1);
        }
    }
}

TEST(Properties, EveryEngineBoundedOnRandomData)
{
    // No engine may blow up beyond its own worst-case overhead
    // (<= 9 bits per byte for the byte-granular ones, <= 40 bits
    // per word for the word-granular ones).
    Rng rng(3);
    for (const auto &name : compressorNames()) {
        auto eng = makeCompressor(name);
        for (int i = 0; i < 30; ++i) {
            CacheLine l;
            for (unsigned w = 0; w < kWordsPerLine / 2; ++w)
                l.setWord64(w, rng.next());
            std::size_t bits = eng->compress(l, {}).sizeBits();
            EXPECT_LE(bits, 40u * kWordsPerLine) << name;
        }
    }
}

TEST(Properties, EnginesAreDeterministic)
{
    Rng rng(5);
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, rng.chance(0.4)
                         ? 0
                         : static_cast<std::uint32_t>(rng.next()));
    for (const auto &name : compressorNames()) {
        auto e1 = makeCompressor(name);
        auto e2 = makeCompressor(name);
        EXPECT_EQ(e1->compress(l, {}).sizeBits(),
                  e2->compress(l, {}).sizeBits())
            << name;
    }
}

TEST(Properties, RefsNeverWorseThanRawForReferenceCopies)
{
    // Sending a line that IS one of the references must compress
    // massively for every dictionary-capable delegate engine.
    Rng rng(7);
    CacheLine ref;
    for (unsigned w = 0; w < kWordsPerLine / 2; ++w)
        ref.setWord64(w, rng.next());
    RefList refs{&ref};
    for (const std::string name : {"lbe", "cpack128", "gzip",
                                   "oracle"}) {
        auto eng = makeDelegateEngine(name);
        std::size_t bits = eng->compress(ref, refs).sizeBits();
        EXPECT_LT(bits, 128u) << name;
        EXPECT_EQ(eng->decompress(eng->compress(ref, refs), refs),
                  ref)
            << name;
    }
}

TEST(Properties, WorkloadMpkiMatchesFormula)
{
    // mem_ratio x (1 - hot_frac) x 1000 approximates off-chip MPKI
    // (plus compulsory warm-up misses); verify order of magnitude
    // for a heavy and a medium benchmark.
    for (const char *bench : {"mcf", "soplex"}) {
        const WorkloadProfile &p = benchmarkProfile(bench);
        MemSystemConfig cfg;
        cfg.scheme = "raw";
        cfg.timing = false;
        MemLinkSystem sys(cfg, {p});
        sys.run(300000);
        double mpki =
            static_cast<double>(
                sys.protocol().stats().get("responses"))
            / (static_cast<double>(sys.instructions(0)) / 1000.0);
        double predicted =
            p.access.mem_ratio * (1.0 - p.access.hot_frac) * 1000.0;
        EXPECT_GT(mpki, predicted * 0.5) << bench;
        EXPECT_LT(mpki, predicted * 2.5) << bench;
    }
}

TEST(Properties, ZeroDominantGroupSeparates)
{
    // The paper's grouping: the zero/value-dominant six compress
    // far better than the hard FP group for every scheme.
    MemSystemConfig cfg;
    cfg.scheme = "cpack";
    cfg.timing = false;
    MemLinkSystem easy(cfg, {benchmarkProfile("libquantum")});
    MemLinkSystem hard(cfg, {benchmarkProfile("namd")});
    easy.run(60000);
    hard.run(60000);
    EXPECT_GT(easy.bitRatio(), 2.0 * hard.bitRatio());
}

TEST(Properties, ChannelStatsMatchCacheState)
{
    // Hash-table occupancy never exceeds WMT-tracked lines (every
    // insertion is paired with a WMT set; collisions only evict).
    Cache home({"h", 256u << 10, 8});
    Cache remote({"r", 64u << 10, 8});
    CableChannel channel(home, remote, CableConfig{});
    ValueProfile v;
    SyntheticMemory mem(v, 0, 11);
    Rng rng(13);
    for (int i = 0; i < 3000; ++i) {
        Addr addr = rng.below(4096) * kLineBytes;
        if (remote.access(addr))
            continue;
        if (!home.probe(addr))
            (void)channel.homeInstall(addr, mem.lineAt(addr));
        (void)channel.remoteFetch(addr, false);
    }
    std::uint64_t tracked = 0;
    for (std::uint32_t s = 0; s < remote.numSets(); ++s)
        for (unsigned w = 0; w < remote.numWays(); ++w)
            if (channel.wmt().occupant(s, static_cast<std::uint8_t>(w)))
                ++tracked;
    // <= 2 insertion signatures per tracked line.
    EXPECT_LE(channel.homeTable().occupancy(), 2 * tracked);
    EXPECT_GT(tracked, 0u);
}
