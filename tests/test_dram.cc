/**
 * @file
 * DRAM-model tests: channel interleaving, closed-page latency,
 * posted writes and per-channel FCFS queueing.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"

using namespace cable;

TEST(Dram, ChannelInterleavesByLine)
{
    DramModel d({4, 70, 10});
    EXPECT_EQ(d.channelOf(0 * 64), 0u);
    EXPECT_EQ(d.channelOf(1 * 64), 1u);
    EXPECT_EQ(d.channelOf(4 * 64), 0u);
}

TEST(Dram, ReadLatency)
{
    DramModel d({4, 70, 10});
    EXPECT_EQ(d.access(100, 0, false), 100u + 70 + 10);
    EXPECT_EQ(d.stats().get("reads"), 1u);
}

TEST(Dram, WritesArePosted)
{
    DramModel d({4, 70, 10});
    Cycles t = d.access(100, 0, true);
    EXPECT_EQ(t, 110u); // occupies the channel but no access wait
    EXPECT_EQ(d.stats().get("writes"), 1u);
}

TEST(Dram, SameChannelQueues)
{
    DramModel d({4, 70, 10});
    Cycles t1 = d.access(0, 0, false);
    Cycles t2 = d.access(0, 4 * 64, false); // same channel 0
    EXPECT_EQ(t1, 80u);
    EXPECT_EQ(t2, 10u + 70 + 10); // starts after the first burst
}

TEST(Dram, DifferentChannelsParallel)
{
    DramModel d({4, 70, 10});
    Cycles t1 = d.access(0, 0 * 64, false);
    Cycles t2 = d.access(0, 1 * 64, false);
    EXPECT_EQ(t1, t2);
}

TEST(Dram, SingleChannelConfig)
{
    DramModel d({1, 70, 10});
    EXPECT_EQ(d.channelOf(123456), 0u);
    d.access(0, 0, false);
    Cycles t = d.access(0, 999 * 64, false);
    EXPECT_GT(t, 80u);
}
