/**
 * @file
 * Telemetry subsystem tests: histogram bucketing edge cases and
 * percentile math, epoch snapshot/merge semantics, JSONL trace
 * round-trip, sampled-tracing determinism, the ratioOpt() n/a
 * distinction and escaping-safe dumps, and the log-level gates.
 */

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/log.h"
#include "common/stats.h"
#include "telemetry/timing.h"
#include "telemetry/trace.h"

using namespace cable;

namespace
{

constexpr std::uint64_t kU64Max =
    std::numeric_limits<std::uint64_t>::max();

// ---------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------

TEST(Histogram, Log2ZeroGoesToBucketZero)
{
    Histogram h;
    h.record(0);
    ASSERT_EQ(h.buckets().size(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    auto [lo, hi] = h.bucketRange(0);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 0u);
}

TEST(Histogram, Log2PowerOfTwoBoundaries)
{
    Histogram h;
    // 1 → bucket 1 [1,1]; 2,3 → bucket 2 [2,3]; 4 → bucket 3 [4,7].
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(4);
    ASSERT_GE(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.bucketRange(2).first, 2u);
    EXPECT_EQ(h.bucketRange(2).second, 3u);
}

TEST(Histogram, Log2MaxU64IsSafe)
{
    Histogram h;
    h.record(kU64Max);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.max(), kU64Max);
    // Bucket 64 covers [2^63, max]; its range must not overflow.
    ASSERT_EQ(h.buckets().size(), 65u);
    EXPECT_EQ(h.buckets()[64], 1u);
    EXPECT_EQ(h.bucketRange(64).second, kU64Max);
}

TEST(Histogram, SingleSampleStats)
{
    Histogram h;
    h.record(42);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.min(), 42u);
    EXPECT_EQ(h.max(), 42u);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
    // Every percentile of one sample is that sample (clamped to
    // the observed extrema).
    EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 42.0);
}

TEST(Histogram, EmptyIsInert)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, LinearOverflowBucketClamps)
{
    Histogram h(Histogram::Scale::Linear, 1, 4);
    h.record(0);
    h.record(3);   // last regular bucket
    h.record(100); // clamps into the overflow bucket (index 3)
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_EQ(h.bucketRange(3).second, kU64Max);
    EXPECT_EQ(h.max(), 100u); // exact extrema survive clamping
}

TEST(Histogram, LinearWidthBuckets)
{
    Histogram h(Histogram::Scale::Linear, 32, 20);
    h.record(0);
    h.record(31);
    h.record(32);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.bucketRange(1).first, 32u);
    EXPECT_EQ(h.bucketRange(1).second, 63u);
}

TEST(Histogram, PercentileNearestRankLinearWidth1)
{
    // Linear width-1 buckets hold exactly one value, so percentiles
    // are exact nearest-rank order statistics.
    Histogram h(Histogram::Scale::Linear, 1, 16);
    for (std::uint64_t v = 1; v <= 10; ++v)
        h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(90), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(10), 1.0);
}

TEST(Histogram, MergeAddsBuckets)
{
    Histogram a, b;
    a.record(1);
    b.record(1);
    b.record(1000);
    a.merge(b);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 1000u);
    EXPECT_EQ(a.sum(), 1002u);
}

TEST(Histogram, DeltaSubtractsBucketsKeepsExtrema)
{
    Histogram h(Histogram::Scale::Linear, 1, 8);
    h.record(1);
    h.record(2);
    Histogram snapshot = h;
    h.record(2);
    h.record(5);
    Histogram d = h.delta(snapshot);
    EXPECT_EQ(d.samples(), 2u);
    EXPECT_EQ(d.buckets()[2], 1u);
    EXPECT_EQ(d.buckets()[5], 1u);
    EXPECT_EQ(d.buckets()[1], 0u);
    // Extrema are cumulative by contract.
    EXPECT_EQ(d.min(), 1u);
    EXPECT_EQ(d.max(), 5u);
}

// ---------------------------------------------------------------------
// StatSet: ratios, epoch deltas, dumps
// ---------------------------------------------------------------------

TEST(StatSet, RatioOptDistinguishesNeverRecorded)
{
    StatSet s;
    s.add("num", 10);
    // Untouched denominator: legacy ratio() says 0.0, ratioOpt says
    // "not applicable".
    EXPECT_DOUBLE_EQ(s.ratio("num", "missing"), 0.0);
    EXPECT_FALSE(s.ratioOpt("num", "missing").has_value());
    // Touched-but-zero denominator is also n/a (division impossible).
    s.add("den", 0);
    EXPECT_TRUE(s.has("den"));
    EXPECT_FALSE(s.ratioOpt("num", "den").has_value());
    s.add("den", 5);
    ASSERT_TRUE(s.ratioOpt("num", "den").has_value());
    EXPECT_DOUBLE_EQ(*s.ratioOpt("num", "den"), 2.0);
}

TEST(StatSet, DumpQuotesAwkwardNames)
{
    StatSet s;
    s.add("plain", 1);
    s.add("with space", 2);
    s.add("quo\"te", 3);
    std::ostringstream os;
    s.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("plain 1"), std::string::npos);
    EXPECT_NE(out.find("\"with space\" 2"), std::string::npos);
    EXPECT_NE(out.find("\"quo\\\"te\" 3"), std::string::npos);
}

TEST(StatSet, EpochDeltaCountersAndHistograms)
{
    StatSet s;
    s.add("transfers", 5);
    s.hist("bits").record(100);
    StatSet epoch0 = s;
    s.add("transfers", 3);
    s.hist("bits").record(200);
    s.hist("fresh").record(1); // born after the snapshot
    StatSet d = s.delta(epoch0);
    EXPECT_EQ(d.get("transfers"), 3u);
    ASSERT_NE(d.findHist("bits"), nullptr);
    EXPECT_EQ(d.findHist("bits")->samples(), 1u);
    ASSERT_NE(d.findHist("fresh"), nullptr);
    EXPECT_EQ(d.findHist("fresh")->samples(), 1u);
}

TEST(StatSet, EpochDeltaOfIdleEpochIsAllZero)
{
    // An epoch in which nothing moved must delta to zeros — not to
    // missing entries, and never to wrapped-negative counters.
    StatSet s;
    s.add("transfers", 7);
    s.hist("bits").record(64);
    s.sketch("frame_bits").record(64);
    StatSet snapshot = s;
    StatSet d = s.delta(snapshot);
    EXPECT_EQ(d.get("transfers"), 0u);
    ASSERT_NE(d.findHist("bits"), nullptr);
    EXPECT_EQ(d.findHist("bits")->samples(), 0u);
    ASSERT_NE(d.findSketch("frame_bits"), nullptr);
    EXPECT_EQ(d.findSketch("frame_bits")->samples(), 0u);
}

TEST(StatSet, EpochDeltaSingleSampleDistribution)
{
    // Distributions cannot be un-merged, so the delta carries them
    // cumulatively — and a single sample must yield clean moments
    // (variance 0, min == max == mean), not NaN.
    StatSet s;
    StatSet snapshot = s;
    s.dist("ratio").record(2.5);
    StatSet d = s.delta(snapshot);
    const Distribution *dist = d.findDist("ratio");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->samples(), 1u);
    EXPECT_DOUBLE_EQ(dist->mean(), 2.5);
    EXPECT_DOUBLE_EQ(dist->variance(), 0.0);
    EXPECT_DOUBLE_EQ(dist->min(), 2.5);
    EXPECT_DOUBLE_EQ(dist->max(), 2.5);
}

TEST(StatSet, EpochDeltaAfterMergeOfDisjointHistograms)
{
    // Fold a worker's disjoint histograms in mid-epoch: the next
    // delta must attribute exactly the merged-in samples, while a
    // histogram the snapshot already covered deltas to empty.
    StatSet s;
    s.hist("local").record(10, 3);
    StatSet snapshot = s;
    StatSet worker;
    worker.hist("remote").record(99, 5);
    worker.hist("local").record(20);
    s.merge(worker);
    StatSet d = s.delta(snapshot);
    ASSERT_NE(d.findHist("remote"), nullptr);
    EXPECT_EQ(d.findHist("remote")->samples(), 5u);
    EXPECT_EQ(d.findHist("remote")->sum(), 5u * 99u);
    ASSERT_NE(d.findHist("local"), nullptr);
    EXPECT_EQ(d.findHist("local")->samples(), 1u);
    EXPECT_EQ(d.findHist("local")->sum(), 20u);
}

TEST(StatSet, EpochDeltaClampsCounterWrap)
{
    // If a counter ever runs backwards (a reset or a wrap), the
    // delta clamps to zero instead of producing a near-2^64 value
    // that would poison every downstream rate computation.
    StatSet before, after;
    before.add("transfers", 100);
    after.add("transfers", 40); // went backwards
    after.add("fresh", 3);      // born after the snapshot
    StatSet d = after.delta(before);
    EXPECT_EQ(d.get("transfers"), 0u);
    EXPECT_EQ(d.get("fresh"), 3u);
}

TEST(StatSet, MergeCombinesAllKinds)
{
    StatSet a, b;
    a.add("c", 1);
    b.add("c", 2);
    b.hist("h").record(4);
    b.dist("d").record(0.5);
    a.merge(b);
    EXPECT_EQ(a.get("c"), 3u);
    ASSERT_NE(a.findHist("h"), nullptr);
    EXPECT_EQ(a.findHist("h")->samples(), 1u);
    ASSERT_NE(a.findDist("d"), nullptr);
    EXPECT_DOUBLE_EQ(a.findDist("d")->mean(), 0.5);
}

TEST(StatSet, DumpJsonIsWellFormed)
{
    StatSet s;
    s.add("a b", 1);
    s.hist("h").record(7);
    s.dist("d").record(1.5);
    std::ostringstream os;
    JsonWriter jw(os);
    s.dumpJson(jw);
    std::string out = os.str();
    EXPECT_NE(out.find("\"a b\":1"), std::string::npos);
    EXPECT_NE(out.find("\"histograms\""), std::string::npos);
    EXPECT_NE(out.find("\"distributions\""), std::string::npos);
    // Balanced braces/brackets — cheap structural sanity.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST(Distribution, MomentsAndMerge)
{
    Distribution d;
    d.record(1.0);
    d.record(3.0);
    EXPECT_EQ(d.samples(), 2u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.variance(), 1.0);
    Distribution e;
    e.record(5.0);
    d.merge(e);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
}

// ---------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------

TraceEvent
encodeEvent(std::uint64_t when, std::uint64_t out_bits)
{
    TraceEvent ev;
    ev.type = TraceEvent::Type::Encode;
    ev.when = when;
    ev.addr = 0x1000 + when * 64;
    ev.engine = "lbe";
    ev.mode = "refs";
    ev.sigs = 4;
    ev.refs = 2;
    ev.cbv = 0x0f0f;
    ev.covered = 8;
    ev.in_bits = 512;
    ev.out_bits = out_bits;
    return ev;
}

TEST(JsonlTrace, RoundTripParse)
{
    std::ostringstream os;
    JsonlTraceSink sink(os);
    sink.emit(encodeEvent(0, 100));
    TraceEvent desync;
    desync.type = TraceEvent::Type::Desync;
    desync.when = 1;
    desync.aux = 3;
    sink.emit(desync);
    sink.flush();

    std::istringstream is(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    // One JSON object per line, fields present and escaped.
    EXPECT_EQ(lines[0].front(), '{');
    EXPECT_EQ(lines[0].back(), '}');
    EXPECT_NE(lines[0].find("\"ev\":\"encode\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"in_bits\":512"), std::string::npos);
    EXPECT_NE(lines[0].find("\"out_bits\":100"), std::string::npos);
    EXPECT_NE(lines[1].find("\"ev\":\"desync\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"aux\":3"), std::string::npos);
    EXPECT_EQ(sink.emitted(), 2u);
}

TEST(ChromeTrace, FlushClosesArray)
{
    std::ostringstream os;
    {
        ChromeTraceSink sink(os);
        sink.emit(encodeEvent(0, 100));
        sink.emit(encodeEvent(1, 200));
        sink.flush();
    }
    std::string out = os.str();
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find(']'), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(SamplingTrace, DeterministicOneInN)
{
    auto run = [](std::uint64_t period) {
        std::ostringstream os;
        JsonlTraceSink inner(os);
        SamplingTraceSink sampler(inner, period);
        for (std::uint64_t i = 0; i < 10; ++i)
            sampler.emit(encodeEvent(i, 100 + i));
        TraceEvent ctl;
        ctl.type = TraceEvent::Type::Retransmit;
        sampler.emit(ctl);
        return std::make_pair(sampler.emitted(), os.str());
    };
    // 1-in-3 over 10 encodes keeps ordinals 0,3,6,9 (+ the control
    // event, which always passes).
    auto [count3, text3] = run(3);
    EXPECT_EQ(count3, 5u);
    EXPECT_NE(text3.find("\"retransmit\""), std::string::npos);
    // Determinism: the identical event stream yields the identical
    // serialized trace.
    auto [count3b, text3b] = run(3);
    EXPECT_EQ(count3, count3b);
    EXPECT_EQ(text3, text3b);
    // Period 1 forwards everything.
    auto [count1, text1] = run(1);
    EXPECT_EQ(count1, 11u);
    (void)text1;
}

TEST(Timing, ScopeRecordsWhenEnabled)
{
    StatSet s;
    setTimingEnabled(false);
    {
        CABLE_TIMED_SCOPE(s, "t_test_ns");
    }
    EXPECT_EQ(s.findHist("t_test_ns"), nullptr);
    setTimingEnabled(true);
    {
        CABLE_TIMED_SCOPE(s, "t_test_ns");
    }
    setTimingEnabled(false);
    ASSERT_NE(s.findHist("t_test_ns"), nullptr);
    EXPECT_EQ(s.findHist("t_test_ns")->samples(), 1u);
}

TEST(Log, ParseAndGating)
{
    EXPECT_EQ(parseLogLevel("quiet"), LogLevel::Quiet);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_FALSE(parseLogLevel("loud").has_value());

    LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(debugLogEnabled());
    setLogLevel(LogLevel::Warn);
    EXPECT_FALSE(debugLogEnabled());
    setLogLevel(before);
}

} // namespace
