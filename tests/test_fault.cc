/**
 * @file
 * Fault-injection and recovery tests: CRC framing detects wire
 * corruption, the ARQ path retries with backoff and falls back to
 * raw, lost sync messages desynchronize only CABLE metadata (never
 * delivered data), the periodic audit catches and repairs desyncs,
 * degraded mode re-arms after a healthy window, and the whole
 * injection pipeline is deterministic under a fixed seed.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/crc.h"
#include "common/rng.h"
#include "core/channel.h"
#include "sim/fault.h"
#include "sim/memlink.h"
#include "workload/profile.h"
#include "workload/value_model.h"

using namespace cable;

namespace
{

BitVec
patternFrame(std::size_t body_bits, unsigned crc_bits,
             std::uint64_t seed)
{
    Rng rng(seed);
    BitWriter bw;
    for (std::size_t i = 0; i < body_bits; ++i)
        bw.put(rng.next() & 1, 1);
    appendFrameCrc(bw, crc_bits);
    return bw.take();
}

/** Deterministic, test-scripted fault model. */
struct ScriptedFault : LinkFaultModel
{
    unsigned corrupt_packets = 0; ///< flip bit 0 of this many packets
    bool drop_next_sync = false;

    unsigned
    corruptPacket(BitVec &wire) override
    {
        if (corrupt_packets == 0 || wire.sizeBits() == 0)
            return 0;
        --corrupt_packets;
        wire.flipBit(0);
        return 1;
    }

    bool
    dropSyncMessage() override
    {
        bool drop = drop_next_sync;
        drop_next_sync = false;
        return drop;
    }

    bool corruptMetadata() override { return false; }
    std::uint64_t pick(std::uint64_t) override { return 0; }
};

struct Rig
{
    Cache home;
    Cache remote;
    CableChannel channel;

    explicit Rig(const CableConfig &cfg = CableConfig{})
        : home({"home", 1u << 20, 8}), remote({"remote", 256u << 10, 8}),
          channel(home, remote, cfg)
    {
    }

    FetchResult
    fetch(SyntheticMemory &mem, Addr addr, bool store = false)
    {
        if (remote.access(addr)) {
            if (store && !remote.entryAt(remote.find(addr)).dirty())
                channel.remoteUpgrade(addr);
            return FetchResult{};
        }
        if (!home.probe(addr))
            (void)channel.homeInstall(addr, mem.lineAt(addr));
        return channel.remoteFetch(addr, store);
    }
};

ValueProfile
similarValues()
{
    ValueProfile v;
    v.zero_line_frac = 0.1;
    v.zero_word_frac = 0.3;
    v.template_count = 16;
    v.region_lines = 8;
    v.template_vocab = 6;
    v.mutation_rate = 0.05;
    v.random_line_frac = 0.05;
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// CRC framing
// ---------------------------------------------------------------------

TEST(Crc, AcceptsCleanFrames)
{
    for (unsigned crc_bits : {8u, 16u})
        for (std::size_t body : {1u, 37u, 512u})
            EXPECT_TRUE(
                checkFrameCrc(patternFrame(body, crc_bits, body),
                              crc_bits))
                << crc_bits << "b CRC, body " << body;
}

TEST(Crc, DetectsEverySingleBitFlip)
{
    for (unsigned crc_bits : {8u, 16u}) {
        BitVec frame = patternFrame(131, crc_bits, 7);
        for (std::size_t i = 0; i < frame.sizeBits(); ++i) {
            frame.flipBit(i);
            EXPECT_FALSE(checkFrameCrc(frame, crc_bits))
                << crc_bits << "b CRC missed flip at bit " << i;
            frame.flipBit(i);
        }
    }
}

TEST(Crc, DetectsEveryBurstUpToCrcWidth)
{
    // Any CRC of width w detects all burst errors of length <= w.
    for (unsigned crc_bits : {8u, 16u}) {
        BitVec frame = patternFrame(99, crc_bits, 11);
        for (std::size_t len = 2; len <= crc_bits; ++len) {
            for (std::size_t s = 0; s + len <= frame.sizeBits();
                 s += 7) {
                // Burst = flipped endpoints, arbitrary interior.
                frame.flipBit(s);
                frame.flipBit(s + len - 1);
                EXPECT_FALSE(checkFrameCrc(frame, crc_bits))
                    << crc_bits << "b CRC missed burst at " << s
                    << " len " << len;
                frame.flipBit(s);
                frame.flipBit(s + len - 1);
            }
        }
    }
}

TEST(Crc, RejectsTruncatedFrames)
{
    BitVec tiny;
    tiny.pushBit(true);
    EXPECT_FALSE(checkFrameCrc(tiny, 16));
    EXPECT_FALSE(checkFrameCrc(BitVec{}, 8));
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjector, DeterministicUnderFixedSeed)
{
    FaultConfig fc;
    fc.bit_error_rate = 0.02;
    fc.burst_rate = 0.1;
    fc.drop_sync_rate = 0.3;
    fc.meta_corrupt_rate = 0.2;
    fc.seed = 42;
    FaultInjector a(fc), b(fc);
    for (unsigned round = 0; round < 50; ++round) {
        BitVec wa = patternFrame(480, 16, round);
        BitVec wb = patternFrame(480, 16, round);
        unsigned fa = a.corruptPacket(wa);
        unsigned fb = b.corruptPacket(wb);
        EXPECT_EQ(fa, fb);
        for (std::size_t i = 0; i < wa.sizeBits(); ++i)
            ASSERT_EQ(wa.bit(i), wb.bit(i)) << "round " << round;
        EXPECT_EQ(a.dropSyncMessage(), b.dropSyncMessage());
        EXPECT_EQ(a.corruptMetadata(), b.corruptMetadata());
    }
    EXPECT_EQ(a.stats().get("faults_injected"),
              b.stats().get("faults_injected"));
    EXPECT_EQ(a.stats().get("bit_flips"), b.stats().get("bit_flips"));
}

TEST(FaultInjector, CertainErrorRateFlipsEveryBit)
{
    FaultConfig fc;
    fc.bit_error_rate = 1.0;
    FaultInjector inj(fc);
    BitVec clean = patternFrame(64, 8, 3);
    BitVec wire = patternFrame(64, 8, 3);
    EXPECT_EQ(inj.corruptPacket(wire), wire.sizeBits());
    for (std::size_t i = 0; i < wire.sizeBits(); ++i)
        EXPECT_NE(wire.bit(i), clean.bit(i));
}

TEST(FaultInjectorDeath, RejectsOutOfRangeProbabilities)
{
    FaultConfig fc;
    fc.bit_error_rate = 1.5;
    EXPECT_EXIT(FaultInjector{fc}, testing::ExitedWithCode(1),
                "bit_error_rate");
}

// ---------------------------------------------------------------------
// ARQ: detect -> NACK -> retransmit -> raw fallback
// ---------------------------------------------------------------------

TEST(FaultChannel, TransientCorruptionRetransmitsAndDelivers)
{
    Rig rig;
    ScriptedFault fault;
    rig.channel.setFaultModel(&fault);
    SyntheticMemory mem(similarValues(), 0, 1);

    fault.corrupt_packets = 2; // fewer than max_retries (3)
    auto r = rig.fetch(mem, 0x1000);
    EXPECT_EQ(r.response.retries, 2u);
    EXPECT_FALSE(r.response.raw_fallback);
    EXPECT_GT(r.response.retry_cycles, 0u);
    EXPECT_EQ(r.response.retrans_bits,
              2 * (r.response.bits + r.response.crc_bits));
    EXPECT_EQ(rig.channel.stats().get("crc_detected"), 2u);
    EXPECT_EQ(rig.channel.stats().get("retransmits"), 2u);
    EXPECT_EQ(rig.channel.stats().get("raw_fallbacks"), 0u);
    // Delivered data is bit-exact despite the corruption.
    EXPECT_EQ(rig.remote.entryAt(rig.remote.find(0x1000)).data,
              mem.lineAt(0x1000));
}

TEST(FaultChannel, PersistentCorruptionFallsBackToRaw)
{
    CableConfig cfg;
    Rig rig(cfg);
    ScriptedFault fault;
    rig.channel.setFaultModel(&fault);
    SyntheticMemory mem(similarValues(), 0, 2);

    fault.corrupt_packets = ~0u; // every packet, forever
    auto r = rig.fetch(mem, 0x2000);
    EXPECT_TRUE(r.response.raw_fallback);
    // max_retries compressed resends, then kRawResendCap raw sends
    // (the final one modeled as recovered by the physical layer).
    EXPECT_EQ(r.response.retries,
              cfg.max_retries + kRawResendCap - 1);
    EXPECT_EQ(rig.channel.stats().get("crc_detected"),
              cfg.max_retries + 1);
    EXPECT_EQ(rig.channel.stats().get("raw_fallbacks"), 1u);
    EXPECT_EQ(rig.channel.stats().get("raw_resend_cap_hits"), 1u);
    EXPECT_EQ(rig.remote.entryAt(rig.remote.find(0x2000)).data,
              mem.lineAt(0x2000));
}

// ---------------------------------------------------------------------
// Desync: lost sync messages, audit, recovery, re-arm
// ---------------------------------------------------------------------

TEST(FaultChannel, DroppedUpgradeSyncIsCaughtByAudit)
{
    Rig rig;
    ScriptedFault fault;
    rig.channel.setFaultModel(&fault);
    SyntheticMemory mem(similarValues(), 0, 3);

    rig.fetch(mem, 0x3000); // shared: tracked in WMT + tables
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);

    fault.drop_next_sync = true;
    rig.fetch(mem, 0x3000, /*store=*/true); // upgrade, notice lost
    EXPECT_EQ(rig.channel.stats().get("sync_drops_upgrade"), 1u);

    // The WMT still tracks a now-dirty remote line: invariant broken.
    unsigned mismatches = rig.channel.auditInvariant();
    EXPECT_GE(mismatches, 1u);
    EXPECT_EQ(rig.channel.stats().get("desync_recoveries"), 1u);
    EXPECT_TRUE(rig.channel.degraded());
    // Recovery flushed and resynchronized: a fresh audit is clean.
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);
}

TEST(FaultChannel, DegradedModeReArmsAfterHealthyWindow)
{
    CableConfig cfg;
    cfg.rearm_window = 4;
    Rig rig(cfg);
    ScriptedFault fault;
    rig.channel.setFaultModel(&fault);
    SyntheticMemory mem(similarValues(), 0, 4);

    rig.fetch(mem, 0x4000);
    fault.drop_next_sync = true;
    rig.fetch(mem, 0x4000, /*store=*/true);
    (void)rig.channel.auditInvariant();
    ASSERT_TRUE(rig.channel.degraded());

    // Clean transfers in degraded mode use self compression only...
    for (unsigned i = 1; i <= 3; ++i) {
        rig.fetch(mem, 0x4000 + i * 0x10000);
        EXPECT_TRUE(rig.channel.degraded()) << "transfer " << i;
    }
    EXPECT_GT(rig.channel.stats().get("degraded_self_only"), 0u);
    // ...and the 4th clean transfer re-arms the reference search.
    rig.fetch(mem, 0x4000 + 4 * 0x10000);
    EXPECT_FALSE(rig.channel.degraded());
    EXPECT_EQ(rig.channel.stats().get("rearms"), 1u);
}

TEST(FaultChannel, MetadataCorruptionNeverCorruptsDeliveredData)
{
    FaultConfig fc;
    fc.meta_corrupt_rate = 1.0; // soft error on every transfer
    fc.drop_sync_rate = 0.2;
    fc.seed = 99;
    FaultInjector inj(fc);
    Rig rig;
    rig.channel.setFaultModel(&inj);
    SyntheticMemory mem(similarValues(), 0, 5);

    for (unsigned i = 0; i < 200; ++i) {
        Addr addr = i * kLineBytes;
        bool store = (i % 7) == 0;
        rig.fetch(mem, addr, store);
        if (!store) {
            ASSERT_EQ(rig.remote.entryAt(rig.remote.find(addr)).data,
                      mem.lineAt(addr))
                << "line " << i << " corrupted";
        }
        if (i % 50 == 49)
            (void)rig.channel.auditInvariant();
    }
    EXPECT_GT(inj.stats().get("meta_corruptions"), 0u);
    EXPECT_GT(rig.channel.stats().get("meta_faults_wmt")
                  + rig.channel.stats().get("meta_faults_ht"),
              0u);
}

// ---------------------------------------------------------------------
// CableDesyncError: structured, and fatal without a fault model
// ---------------------------------------------------------------------

TEST(FaultChannel, DesyncWithoutFaultModelPropagates)
{
    Rig rig;
    ValueProfile v;
    v.random_line_frac = 1.0; // incompressible alone: refs must win
    SyntheticMemory mem(v, 0, 6);

    Addr ref_addr = 0x5000, wb_addr = 0x6000;
    rig.fetch(mem, ref_addr); // clean shared: valid reference
    rig.fetch(mem, wb_addr);

    // Silently corrupt the home copy of the reference line — the
    // §III-F invariant is now broken with no fault model attached.
    LineID hlid = rig.home.find(ref_addr);
    ASSERT_TRUE(hlid.valid);
    CacheLine bad = rig.home.entryAt(hlid).data;
    bad.setWord(0, ~bad.word(0));
    rig.home.entryAt(hlid).data = bad;

    // A write-back whose data duplicates the reference line picks it
    // via the remote hash table; home-side decode then mismatches.
    try {
        (void)rig.channel.writeBack(wb_addr, mem.lineAt(ref_addr));
        FAIL() << "expected CableDesyncError";
    } catch (const CableDesyncError &e) {
        EXPECT_TRUE(e.writeback);
        EXPECT_GE(e.refs.size(), 1u);
        EXPECT_NE(e.mismatch_word, CableDesyncError::kNoWord);
        EXPECT_NE(std::string(e.what()).find("write-back"),
                  std::string::npos);
    }
}

namespace
{

/**
 * Builds the deterministic delivery-desync setup: a clean shared
 * reference line whose home copy is silently corrupted, then a
 * write-back that duplicates the original reference data, which the
 * remote hash table picks as a reference and home-side decode then
 * rejects. Returns the write-back line to send.
 */
CacheLine
armDeliveryDesync(Rig &rig, SyntheticMemory &mem, Addr ref_addr)
{
    rig.fetch(mem, ref_addr);
    CacheLine original = mem.lineAt(ref_addr);
    LineID hlid = rig.home.find(ref_addr);
    EXPECT_TRUE(hlid.valid);
    CacheLine bad = rig.home.entryAt(hlid).data;
    bad.setWord(0, ~bad.word(0));
    rig.home.entryAt(hlid).data = bad;
    return original;
}

} // namespace

TEST(FaultChannel, NonStrictDesyncRecoversInPlace)
{
    Rig rig; // strict_desync off: recovery is the default
    ScriptedFault fault;
    rig.channel.setFaultModel(&fault);
    ValueProfile v;
    v.random_line_frac = 1.0;
    SyntheticMemory mem(v, 0, 6);

    Addr wb_addr = 0x6000;
    rig.fetch(mem, wb_addr);
    CacheLine dup = armDeliveryDesync(rig, mem, 0x5000);

    Transfer t = rig.channel.writeBack(wb_addr, dup);
    EXPECT_TRUE(t.raw_fallback);
    EXPECT_EQ(rig.channel.stats().get("desyncs_detected"), 1u);
    EXPECT_EQ(rig.channel.stats().get("desync_recoveries"), 1u);
    EXPECT_TRUE(rig.channel.degraded());
    // The raw fallback still delivered the correct data.
    EXPECT_EQ(rig.home.entryAt(rig.home.find(wb_addr)).data, dup);
    // Re-arm traffic is charged to the recovery counters only.
    const StatSet &st = rig.channel.stats();
    EXPECT_EQ(st.get("recovery_bits"), st.get("resync_rearm_bits"));
    // The in-recovery resynchronize ran an instant before the
    // write-back landed at home, so one stale link can remain (the
    // protocol's eviction path would have dropped it); the audit
    // repairs it and a re-audit is clean.
    (void)rig.channel.auditInvariant();
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);
}

TEST(FaultChannel, StrictDesyncSurfacesTypedError)
{
    CableConfig cfg;
    cfg.strict_desync = true;
    Rig rig(cfg);
    ScriptedFault fault;
    rig.channel.setFaultModel(&fault);
    ValueProfile v;
    v.random_line_frac = 1.0;
    SyntheticMemory mem(v, 0, 6);

    Addr wb_addr = 0x6000;
    rig.fetch(mem, wb_addr);
    CacheLine dup = armDeliveryDesync(rig, mem, 0x5000);

    EXPECT_THROW((void)rig.channel.writeBack(wb_addr, dup),
                 CableDesyncError);
    // Strict mode counts and surfaces — it never enters recovery.
    EXPECT_EQ(rig.channel.stats().get("desyncs_detected"), 1u);
    EXPECT_EQ(rig.channel.stats().get("desync_recoveries"), 0u);
}

TEST(FaultChannel, SecondDesyncWithinAuditWindowRecovers)
{
    CableConfig cfg;
    cfg.rearm_window = 64; // stay degraded across both desyncs
    Rig rig(cfg);
    ScriptedFault fault;
    rig.channel.setFaultModel(&fault);
    SyntheticMemory mem(similarValues(), 0, 8);

    std::uint64_t epoch0 = rig.channel.epoch();
    rig.fetch(mem, 0x7000);
    fault.drop_next_sync = true;
    rig.fetch(mem, 0x7000, /*store=*/true);
    EXPECT_GE(rig.channel.auditInvariant(), 1u);
    EXPECT_EQ(rig.channel.stats().get("desync_recoveries"), 1u);
    ASSERT_TRUE(rig.channel.degraded());

    // Second lost sync while the first recovery's degraded window is
    // still open: the audit must catch and repair it again rather
    // than assuming a degraded channel cannot re-desync.
    rig.fetch(mem, 0x8000);
    fault.drop_next_sync = true;
    rig.fetch(mem, 0x8000, /*store=*/true);
    EXPECT_GE(rig.channel.auditInvariant(), 1u);
    EXPECT_EQ(rig.channel.stats().get("desync_recoveries"), 2u);
    EXPECT_TRUE(rig.channel.degraded());
    EXPECT_EQ(rig.channel.stats().get("degraded_entries"), 1u);
    EXPECT_GE(rig.channel.epoch(), epoch0 + 2);

    // Both recoveries leave a consistent channel behind.
    EXPECT_EQ(rig.channel.auditInvariant(), 0u);
    rig.fetch(mem, 0x9000);
    EXPECT_EQ(rig.remote.entryAt(rig.remote.find(0x9000)).data,
              mem.lineAt(0x9000));
}

// ---------------------------------------------------------------------
// End-to-end: MemLinkSystem with injection
// ---------------------------------------------------------------------

namespace
{

MemSystemConfig
faultyMemCfg(std::uint64_t fault_seed)
{
    MemSystemConfig cfg;
    cfg.timing = false;
    cfg.seed = 12;
    cfg.fault.bit_error_rate = 1e-4;
    cfg.fault.drop_sync_rate = 0.05;
    cfg.fault.meta_corrupt_rate = 1e-3;
    cfg.fault.seed = fault_seed;
    cfg.fault_audit_period = 50000;
    return cfg;
}

} // namespace

TEST(FaultMemLink, SameFaultSeedGivesIdenticalCounters)
{
    MemLinkSystem a(faultyMemCfg(5), {benchmarkProfile("mcf")});
    MemLinkSystem b(faultyMemCfg(5), {benchmarkProfile("mcf")});
    a.run(30000);
    b.run(30000);
    EXPECT_GT(a.protocol().stats().get("crc_detected"), 0u);
    EXPECT_GT(a.protocol().stats().get("desync_recoveries"), 0u);
    for (const char *key :
         {"crc_detected", "retransmits", "raw_fallbacks",
          "desync_recoveries", "retrans_bits", "wire_bits"})
        EXPECT_EQ(a.protocol().stats().get(key),
                  b.protocol().stats().get(key))
            << key;
    EXPECT_EQ(a.faultInjector()->stats().get("faults_injected"),
              b.faultInjector()->stats().get("faults_injected"));
    EXPECT_EQ(a.link().stats().get("flits"),
              b.link().stats().get("flits"));
    EXPECT_DOUBLE_EQ(a.bitRatio(), b.bitRatio());
    EXPECT_LE(a.goodputRatio(), a.bitRatio());
}

TEST(FaultMemLink, CrcFramingLeavesPayloadRatioUntouched)
{
    // Fault-free runs with and without CRC framing must report the
    // same payload compression ratio; only the separately-accounted
    // overhead (and hence flits) differ.
    MemSystemConfig with_crc;
    with_crc.timing = false;
    with_crc.seed = 3;
    MemSystemConfig no_crc = with_crc;
    no_crc.cable.frame_crc_bits = 0;

    MemLinkSystem a(with_crc, {benchmarkProfile("libquantum")});
    MemLinkSystem b(no_crc, {benchmarkProfile("libquantum")});
    a.run(30000);
    b.run(30000);
    EXPECT_DOUBLE_EQ(a.bitRatio(), b.bitRatio());
    EXPECT_EQ(a.protocol().stats().get("wire_bits"),
              b.protocol().stats().get("wire_bits"));
    EXPECT_GT(a.protocol().stats().get("crc_overhead_bits"), 0u);
    EXPECT_EQ(b.protocol().stats().get("crc_overhead_bits"), 0u);
    EXPECT_LT(a.goodputRatio(), a.bitRatio());
}
