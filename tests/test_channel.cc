/**
 * @file
 * CableChannel integration tests: the full search/compress/transmit/
 * synchronize loop between a home and a remote cache. Every transfer
 * is decompressed by the channel itself from receiver-side data and
 * verified bit-exact (panic on mismatch), so simply surviving a long
 * randomized workload is a strong correctness statement; on top of
 * that these tests check the synchronization invariants directly.
 */

#include <gtest/gtest.h>

#include <map>

#include "cache/cache.h"
#include "common/rng.h"
#include "core/channel.h"
#include "workload/value_model.h"

using namespace cable;

namespace
{

struct Rig
{
    Cache home;
    Cache remote;
    CableChannel channel;

    explicit Rig(const CableConfig &cfg = CableConfig{},
                 std::uint64_t home_bytes = 1u << 20,
                 std::uint64_t remote_bytes = 256u << 10)
        : home({"home", home_bytes, 8}),
          remote({"remote", remote_bytes, 8}),
          channel(home, remote, cfg)
    {
    }

    /**
     * Fetch addr into the remote, filling home from @p mem. A hit
     * at the remote touches LRU state (and upgrades on a store),
     * like the surrounding system would.
     */
    FetchResult
    fetch(SyntheticMemory &mem, Addr addr, bool store = false)
    {
        if (remote.access(addr)) {
            if (store && !remote.entryAt(remote.find(addr)).dirty())
                channel.remoteUpgrade(addr);
            return FetchResult{};
        }
        if (!home.probe(addr))
            (void)channel.homeInstall(addr, mem.lineAt(addr));
        return channel.remoteFetch(addr, store);
    }
};

ValueProfile
similarValues()
{
    ValueProfile v;
    v.zero_line_frac = 0.1;
    v.zero_word_frac = 0.3;
    v.template_count = 16;
    v.region_lines = 8;
    v.template_vocab = 6;
    v.mutation_rate = 0.05;
    v.random_line_frac = 0.05;
    return v;
}

} // namespace

TEST(Channel, BasicFetchInstallsAtRemote)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 1);
    auto r = rig.fetch(mem, 0x1000);
    EXPECT_TRUE(rig.remote.probe(0x1000));
    EXPECT_TRUE(rig.home.probe(0x1000));
    EXPECT_EQ(r.response.raw_bits, 512u);
    EXPECT_GT(r.response.bits, 0u);
    EXPECT_EQ(rig.remote.entryAt(rig.remote.find(0x1000)).data,
              mem.lineAt(0x1000));
}

TEST(Channel, SimilarLinesCompressWithReferences)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 2);
    // Fetch a whole template region; later lines should find the
    // earlier ones as references.
    unsigned with_refs = 0;
    for (unsigned i = 0; i < 64; ++i) {
        auto r = rig.fetch(mem, i * kLineBytes);
        if (r.response.nrefs > 0)
            ++with_refs;
    }
    EXPECT_GT(with_refs, 10u);
    EXPECT_GT(rig.channel.compressionRatio(), 2.0);
}

TEST(Channel, ZeroLinesSelfCompressWithoutSearch)
{
    Rig rig;
    ValueProfile v;
    v.zero_line_frac = 1.0;
    SyntheticMemory mem(v, 0, 3);
    for (unsigned i = 0; i < 16; ++i) {
        auto r = rig.fetch(mem, i * kLineBytes);
        EXPECT_TRUE(r.response.self_only);
        EXPECT_EQ(r.response.nrefs, 0u);
    }
    EXPECT_GT(rig.channel.stats().get("self_threshold_hits"), 0u);
    EXPECT_EQ(rig.channel.stats().get("searches"), 0u);
}

TEST(Channel, RandomDataFallsBackGracefully)
{
    Rig rig;
    ValueProfile v;
    v.zero_line_frac = 0.0;
    v.random_line_frac = 1.0;
    SyntheticMemory mem(v, 0, 4);
    for (unsigned i = 0; i < 32; ++i)
        rig.fetch(mem, i * kLineBytes);
    // Random lines: ratio close to 1, many raw sends, no crash.
    EXPECT_LT(rig.channel.compressionRatio(), 1.2);
}

TEST(Channel, SharedStateInvariant)
{
    // After any fetch sequence: every WMT-tracked remote slot holds
    // exactly the line its home slot holds.
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 5);
    Rng rng(6);
    for (int i = 0; i < 3000; ++i)
        rig.fetch(mem, rng.below(4096) * kLineBytes,
                  rng.chance(0.2));

    const WayMapTable &wmt = rig.channel.wmt();
    unsigned tracked = 0;
    for (std::uint32_t rset = 0; rset < rig.remote.numSets();
         ++rset) {
        for (unsigned w = 0; w < rig.remote.numWays(); ++w) {
            auto occ = wmt.occupantHomeLID(
                rset, static_cast<std::uint8_t>(w));
            if (!occ)
                continue;
            ++tracked;
            const Cache::Entry &he = rig.home.entryAt(*occ);
            ASSERT_TRUE(he.valid());
            LineID rlid(rset, static_cast<std::uint8_t>(w));
            const Cache::Entry &re = rig.remote.entryAt(rlid);
            ASSERT_TRUE(re.valid());
            ASSERT_FALSE(re.dirty()); // dirty lines are untracked
            ASSERT_EQ(he.tag, re.tag);
            ASSERT_EQ(he.data, re.data);
        }
    }
    EXPECT_GT(tracked, 0u);
}

TEST(Channel, StoreMissInstallsModifiedAndUntracked)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 7);
    rig.fetch(mem, 0x2000, /*store=*/true);
    LineID rlid = rig.remote.find(0x2000);
    ASSERT_TRUE(rlid.valid);
    EXPECT_TRUE(rig.remote.entryAt(rlid).dirty());
    EXPECT_FALSE(
        rig.channel.wmt().occupant(rlid.set, rlid.way).has_value());
}

TEST(Channel, UpgradeDetachesLine)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 8);
    rig.fetch(mem, 0x3000);
    LineID rlid = rig.remote.find(0x3000);
    ASSERT_TRUE(
        rig.channel.wmt().occupant(rlid.set, rlid.way).has_value());
    rig.channel.remoteUpgrade(0x3000);
    EXPECT_TRUE(rig.remote.entryAt(rlid).dirty());
    EXPECT_FALSE(
        rig.channel.wmt().occupant(rlid.set, rlid.way).has_value());
    EXPECT_EQ(rig.channel.stats().get("upgrades"), 1u);
}

TEST(Channel, DirtyEvictionWritesBackCompressed)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 9);
    rig.fetch(mem, 0x4000);
    rig.channel.remoteUpgrade(0x4000);
    CacheLine dirty = mem.lineAt(0x4000);
    dirty.setWord(0, 0xfeedf00d);
    rig.remote.writeLine(0x4000, dirty, true);

    LineID rlid = rig.remote.find(0x4000);
    auto wb = rig.channel.remoteEvictSlot(rlid);
    ASSERT_TRUE(wb.has_value());
    EXPECT_TRUE(wb->writeback);
    EXPECT_FALSE(rig.remote.probe(0x4000));
    // Home copy updated with the dirty data.
    EXPECT_EQ(rig.home.entryAt(rig.home.find(0x4000)).data, dirty);
    EXPECT_TRUE(rig.home.entryAt(rig.home.find(0x4000)).dirty());
}

TEST(Channel, CleanEvictionSendsNoData)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 10);
    rig.fetch(mem, 0x5000);
    auto before = rig.channel.stats().get("wire_bits");
    auto wb = rig.channel.remoteEvictSlot(rig.remote.find(0x5000));
    EXPECT_FALSE(wb.has_value());
    EXPECT_EQ(rig.channel.stats().get("wire_bits"), before);
    EXPECT_FALSE(rig.remote.probe(0x5000));
}

TEST(Channel, EvictionRemovesReferences)
{
    // After a line is evicted from the remote, later transfers must
    // not reference it (the channel would panic on decompression
    // since the receiver reads its own slots).
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 11);
    Rng rng(12);
    // Heavy traffic with a small remote forces constant evictions.
    for (int i = 0; i < 5000; ++i)
        rig.fetch(mem, rng.below(1 << 14) * kLineBytes);
    SUCCEED(); // no verification panic == references stayed valid
}

TEST(Channel, WriteBackUsesRemoteReferences)
{
    CableConfig cfg;
    Rig rig(cfg);
    SyntheticMemory mem(similarValues(), 0, 13);
    // Warm both caches within one template region.
    for (unsigned i = 0; i < 8; ++i)
        rig.fetch(mem, i * kLineBytes);
    // Dirty a near-duplicate and write it back while resident.
    CacheLine d = mem.lineAt(0);
    d.setWord(3, 0x12345678);
    rig.channel.remoteUpgrade(0);
    rig.remote.writeLine(0, d, true);
    Transfer t = rig.channel.writeBack(0, d);
    EXPECT_TRUE(t.writeback);
    EXPECT_LT(t.bits, 512u); // compressed against siblings
    EXPECT_EQ(rig.home.entryAt(rig.home.find(0)).data, d);
}

TEST(Channel, HomeEvictionBackInvalidatesRemote)
{
    // Tiny home cache: fetching enough lines forces home evictions
    // of remote-resident lines.
    Rig rig(CableConfig{}, /*home=*/32u << 10, /*remote=*/16u << 10);
    SyntheticMemory mem(similarValues(), 0, 14);
    Rng rng(15);
    for (int i = 0; i < 4000; ++i)
        rig.fetch(mem, rng.below(4096) * kLineBytes);
    EXPECT_GT(rig.channel.stats().get("back_invalidations"), 0u);
    // Inclusivity: every remote line still present at home.
    for (std::uint32_t set = 0; set < rig.remote.numSets(); ++set) {
        for (unsigned w = 0; w < rig.remote.numWays(); ++w) {
            const Cache::Entry &re = rig.remote.entryAt(
                LineID(set, static_cast<std::uint8_t>(w)));
            if (!re.valid())
                continue;
            ASSERT_TRUE(rig.home.probe(re.tag << kLineShift));
        }
    }
}

TEST(Channel, SnoopInvalidateCleansUp)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 16);
    rig.fetch(mem, 0x6000);
    auto wb = rig.channel.remoteInvalidate(0x6000);
    EXPECT_FALSE(wb.has_value()); // clean copy
    EXPECT_FALSE(rig.remote.probe(0x6000));
    EXPECT_EQ(rig.channel.stats().get("snoop_invalidations"), 1u);
    EXPECT_FALSE(rig.channel.remoteInvalidate(0x6000).has_value());
}

TEST(Channel, CompressionDisabledSendsRaw)
{
    CableConfig cfg;
    cfg.compression_enabled = false;
    Rig rig(cfg);
    SyntheticMemory mem(similarValues(), 0, 17);
    auto r = rig.fetch(mem, 0x7000);
    EXPECT_TRUE(r.response.raw);
    EXPECT_EQ(r.response.bits, 512u);
    EXPECT_DOUBLE_EQ(rig.channel.compressionRatio(), 1.0);
}

TEST(Channel, OnOffToggleKeepsMetadataLive)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 18);
    Rng rng(19);
    for (int i = 0; i < 300; ++i)
        rig.fetch(mem, rng.below(1024) * kLineBytes);
    rig.channel.setCompressionEnabled(false);
    for (int i = 0; i < 300; ++i)
        rig.fetch(mem, rng.below(1024) * kLineBytes);
    rig.channel.setCompressionEnabled(true);
    unsigned with_refs = 0;
    for (int i = 0; i < 300; ++i) {
        auto addr = rng.below(1024) * kLineBytes;
        if (rig.remote.probe(addr))
            continue;
        auto r = rig.fetch(mem, addr);
        if (r.response.nrefs)
            ++with_refs;
    }
    EXPECT_GT(with_refs, 0u); // metadata survived the off period
}

TEST(Channel, DelegateEngineSweepAllWork)
{
    for (const std::string engine :
         {"lbe", "cpack", "cpack128", "gzip", "oracle", "bdi"}) {
        CableConfig cfg;
        cfg.engine = engine;
        Rig rig(cfg);
        SyntheticMemory mem(similarValues(), 0, 20);
        Rng rng(21);
        for (int i = 0; i < 800; ++i)
            rig.fetch(mem, rng.below(2048) * kLineBytes,
                      rng.chance(0.2));
        EXPECT_GE(rig.channel.compressionRatio(), 1.0) << engine;
    }
}

TEST(Channel, MaxRefsRespected)
{
    CableConfig cfg;
    cfg.max_refs = 2;
    Rig rig(cfg);
    SyntheticMemory mem(similarValues(), 0, 22);
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        auto addr = rng.below(2048) * kLineBytes;
        if (rig.remote.probe(addr))
            continue;
        auto r = rig.fetch(mem, addr);
        EXPECT_LE(r.response.nrefs, 2u);
    }
    EXPECT_EQ(rig.channel.stats().get("refs_3"), 0u);
}

TEST(Channel, WritebackCompressionCanBeDisabled)
{
    CableConfig cfg;
    cfg.writeback_compression = false;
    Rig rig(cfg);
    SyntheticMemory mem(similarValues(), 0, 24);
    rig.fetch(mem, 0x8000);
    rig.channel.remoteUpgrade(0x8000);
    CacheLine d = mem.lineAt(0x8000);
    d.setWord(1, 99);
    rig.remote.writeLine(0x8000, d, true);
    auto wb = rig.channel.remoteEvictSlot(rig.remote.find(0x8000));
    ASSERT_TRUE(wb.has_value());
    EXPECT_TRUE(wb->raw);
}

TEST(Channel, StatsAccumulateConsistently)
{
    Rig rig;
    SyntheticMemory mem(similarValues(), 0, 25);
    Rng rng(26);
    for (int i = 0; i < 1000; ++i)
        rig.fetch(mem, rng.below(4096) * kLineBytes, rng.chance(0.3));
    const StatSet &s = rig.channel.stats();
    EXPECT_EQ(s.get("transfers"),
              s.get("responses") + s.get("wb_transfers"));
    EXPECT_EQ(s.get("raw_bits"),
              s.get("resp_raw_bits") + s.get("wb_raw_bits"));
    EXPECT_EQ(s.get("wire_bits"),
              s.get("resp_wire_bits") + s.get("wb_wire_bits"));
    EXPECT_EQ(s.get("responses"),
              s.get("refs_0") + s.get("refs_1") + s.get("refs_2")
                  + s.get("refs_3"));
}
