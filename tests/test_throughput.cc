/**
 * @file
 * ThroughputSim tests (Fig 14 methodology): bandwidth-share
 * arithmetic, group scheduling, and the headline effect — at high
 * thread counts, compression converts bandwidth into throughput for
 * memory-bound workloads but not compute-bound ones.
 */

#include <gtest/gtest.h>

#include "sim/throughput.h"

using namespace cable;

namespace
{

MemSystemConfig
threadCfg(const std::string &scheme)
{
    MemSystemConfig cfg;
    cfg.scheme = scheme;
    cfg.timing = true;
    cfg.l1_bytes = 4 << 10;
    cfg.l2_bytes = 16 << 10;
    cfg.llc_bytes_per_thread = 128 << 10;
    cfg.l4_bytes_per_thread = 512 << 10;
    return cfg;
}

} // namespace

TEST(Throughput, GroupBandwidthShare)
{
    ThroughputSim sim(threadCfg("raw"), benchmarkProfile("povray"),
                      2048, 8, 76.8);
    EXPECT_NEAR(sim.groupBandwidthGBs(), 76.8 * 8 / 2048, 1e-9);
    EXPECT_EQ(sim.groupSize(), 8u);
    // The shared link runs at the equivalent frequency.
    EXPECT_NEAR(sim.link().bitsPerCoreCycle(),
                sim.groupBandwidthGBs() * 8 / 2.0, 1e-9);
}

TEST(Throughput, AllThreadsComplete)
{
    ThroughputSim sim(threadCfg("raw"), benchmarkProfile("hmmer"),
                      256, 4);
    sim.run(3000);
    for (unsigned i = 0; i < sim.groupSize(); ++i)
        EXPECT_TRUE(sim.system(i).allThreadsReached(3000));
    EXPECT_GT(sim.aggregateIPC(), 0.0);
}

TEST(Throughput, CompressionHelpsWhenBandwidthBound)
{
    // 2048 threads: a memory-bound workload is starved on the raw
    // link; CABLE converts its ratio into throughput (Fig 14a).
    ThroughputSim raw(threadCfg("raw"), benchmarkProfile("mcf"),
                      2048, 4);
    ThroughputSim cable(threadCfg("cable"), benchmarkProfile("mcf"),
                        2048, 4);
    raw.run(4000);
    cable.run(4000);
    EXPECT_GT(cable.aggregateIPC(), raw.aggregateIPC() * 1.5);
}

TEST(Throughput, ComputeBoundGainsLittle)
{
    // Warm the hot set first so compulsory misses don't masquerade
    // as steady-state bandwidth demand (the paper's 100M-warmup,
    // 30M-measured SimPoint methodology in miniature).
    ThroughputSim raw(threadCfg("raw"), benchmarkProfile("povray"),
                      2048, 4);
    ThroughputSim cable(threadCfg("cable"),
                        benchmarkProfile("povray"), 2048, 4);
    raw.run(6000, 8000);
    cable.run(6000, 8000);
    double speedup = cable.aggregateIPC() / raw.aggregateIPC();
    EXPECT_LT(speedup, 1.3);
    EXPECT_GT(speedup, 0.7);
}

TEST(Throughput, GainGrowsWithThreadCount)
{
    // Fig 14b: at low thread counts bandwidth is plentiful and the
    // schemes tie; at high counts CABLE pulls ahead.
    double speedup_low, speedup_high;
    {
        ThroughputSim raw(threadCfg("raw"), benchmarkProfile("mcf"),
                          64, 4);
        ThroughputSim cable(threadCfg("cable"),
                            benchmarkProfile("mcf"), 64, 4);
        raw.run(3000);
        cable.run(3000);
        speedup_low = cable.aggregateIPC() / raw.aggregateIPC();
    }
    {
        ThroughputSim raw(threadCfg("raw"), benchmarkProfile("mcf"),
                          2048, 4);
        ThroughputSim cable(threadCfg("cable"),
                            benchmarkProfile("mcf"), 2048, 4);
        raw.run(3000);
        cable.run(3000);
        speedup_high = cable.aggregateIPC() / raw.aggregateIPC();
    }
    EXPECT_GT(speedup_high, speedup_low);
}

TEST(ThroughputDeath, GroupLargerThanTotalIsFatal)
{
    EXPECT_EXIT(ThroughputSim(threadCfg("raw"),
                              benchmarkProfile("mcf"), 4, 8),
                ::testing::ExitedWithCode(1), "below group size");
}
