/**
 * @file
 * Signature hash-table tests (§III-B): insertion, lookup, removal,
 * bucket FIFO replacement, refresh semantics and sizing.
 */

#include <gtest/gtest.h>

#include "core/hash_table.h"

using namespace cable;

namespace
{

SignatureHashTable::Config
cfg(std::uint64_t entries = 256, unsigned ways = 2)
{
    SignatureHashTable::Config c;
    c.entries = entries;
    c.bucket_ways = ways;
    return c;
}

std::vector<LineID>
lookupAll(const SignatureHashTable &t, std::uint32_t sig)
{
    std::vector<LineID> out;
    t.lookup(sig, out);
    return out;
}

} // namespace

TEST(HashTable, InsertAndLookup)
{
    SignatureHashTable t(cfg());
    t.insert(0xabc, LineID(1, 2));
    auto hits = lookupAll(t, 0xabc);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], LineID(1, 2));
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(HashTable, LookupMissIsEmpty)
{
    SignatureHashTable t(cfg());
    EXPECT_TRUE(lookupAll(t, 0x123).empty());
}

TEST(HashTable, RemoveSpecificMapping)
{
    SignatureHashTable t(cfg());
    t.insert(0xabc, LineID(1, 2));
    t.insert(0xabc, LineID(3, 4));
    t.remove(0xabc, LineID(1, 2));
    auto hits = lookupAll(t, 0xabc);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], LineID(3, 4));
}

TEST(HashTable, RemoveUnknownIsNoop)
{
    SignatureHashTable t(cfg());
    t.insert(0xabc, LineID(1, 2));
    t.remove(0xabc, LineID(9, 9));
    t.remove(0xdef, LineID(1, 2));
    EXPECT_EQ(lookupAll(t, 0xabc).size(), 1u);
}

TEST(HashTable, DuplicateInsertRefreshes)
{
    SignatureHashTable t(cfg());
    t.insert(0xabc, LineID(1, 2));
    t.insert(0xabc, LineID(1, 2));
    EXPECT_EQ(lookupAll(t, 0xabc).size(), 1u);
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(HashTable, BucketOverflowReplacesOldest)
{
    SignatureHashTable t(cfg(256, 2));
    t.insert(0xabc, LineID(1, 0));
    t.insert(0xabc, LineID(2, 0));
    t.insert(0xabc, LineID(3, 0)); // evicts (1,0), the oldest
    auto hits = lookupAll(t, 0xabc);
    ASSERT_EQ(hits.size(), 2u);
    for (LineID lid : hits)
        EXPECT_NE(lid, LineID(1, 0));
}

TEST(HashTable, RefreshProtectsFromFifoReplacement)
{
    SignatureHashTable t(cfg(256, 2));
    t.insert(0xabc, LineID(1, 0));
    t.insert(0xabc, LineID(2, 0));
    t.insert(0xabc, LineID(1, 0)); // refresh makes (2,0) oldest
    t.insert(0xabc, LineID(3, 0));
    auto hits = lookupAll(t, 0xabc);
    ASSERT_EQ(hits.size(), 2u);
    for (LineID lid : hits)
        EXPECT_NE(lid, LineID(2, 0));
}

TEST(HashTable, DeeperBucketsHoldMore)
{
    SignatureHashTable t(cfg(64, 4));
    for (unsigned i = 0; i < 4; ++i)
        t.insert(0x77, LineID(i, 0));
    EXPECT_EQ(lookupAll(t, 0x77).size(), 4u);
}

TEST(HashTable, EntriesRoundedToPow2)
{
    SignatureHashTable t(cfg(1000, 2));
    EXPECT_EQ(t.numEntries(), 1024u);
    SignatureHashTable t1(cfg(1, 2));
    EXPECT_EQ(t1.numEntries(), 1u);
}

TEST(HashTable, TinyTableStillWorks)
{
    // The Fig 21 extreme: a 1-entry table degrades, not breaks.
    SignatureHashTable t(cfg(1, 2));
    t.insert(0x1, LineID(1, 0));
    t.insert(0x2, LineID(2, 0)); // same (only) bucket
    EXPECT_EQ(t.occupancy(), 2u);
    EXPECT_EQ(lookupAll(t, 0x1).size(), 2u); // collisions expected
}

TEST(HashTable, Clear)
{
    SignatureHashTable t(cfg());
    for (unsigned i = 0; i < 100; ++i)
        t.insert(i * 2654435761u, LineID(i, 0));
    EXPECT_GT(t.occupancy(), 0u);
    t.clear();
    EXPECT_EQ(t.occupancy(), 0u);
}

TEST(HashTable, DifferentSeedsHashDifferently)
{
    auto c1 = cfg(1 << 12, 2);
    auto c2 = c1;
    c2.hash_seed = 0x999;
    SignatureHashTable t1(c1), t2(c2);
    // Same inserts; collision patterns should differ. We test via a
    // signature pair colliding in one table but not the other.
    unsigned differing = 0;
    for (std::uint32_t s = 1; s < 64; ++s) {
        t1.insert(s, LineID(s, 0));
        t2.insert(s, LineID(s, 0));
    }
    for (std::uint32_t s = 1; s < 64; ++s) {
        if (lookupAll(t1, s).size() != lookupAll(t2, s).size())
            ++differing;
    }
    // Not a hard guarantee, but with 4096 entries and 63 keys the
    // bucket layouts almost surely differ somewhere... if not, both
    // are collision-free, which is also acceptable:
    SUCCEED();
}
